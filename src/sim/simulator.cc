#include "simulator.hh"

#include <algorithm>

#include "trace.hh"

namespace csb::sim {

Simulator::Simulator()
{
    // The newest simulator provides trace timestamps; in practice one
    // simulator is live at a time per measurement.
    trace::setTickSource([this] { return curTick(); });
}

Simulator::~Simulator()
{
    // Never leave a dangling tick source behind.
    trace::setTickSource(nullptr);
}

void
Simulator::registerClocked(Clocked *obj)
{
    clocked_.push_back(obj);
    order_dirty_ = true;
}

void
Simulator::stepOne()
{
    if (order_dirty_) {
        std::stable_sort(clocked_.begin(), clocked_.end(),
                         [](const Clocked *a, const Clocked *b) {
                             return a->evalOrder() < b->evalOrder();
                         });
        order_dirty_ = false;
    }

    Tick now = events_.curTick();
    events_.serviceUntil(now);
    for (Clocked *obj : clocked_) {
        if (obj->clockDomain().isEdge(now))
            obj->tick();
    }
    events_.serviceUntil(now + 1);
}

Tick
Simulator::run(const std::function<bool()> &done, Tick max_ticks)
{
    Tick start = curTick();
    while (curTick() - start < max_ticks) {
        if (done())
            return curTick();
        stepOne();
    }
    return curTick();
}

Tick
Simulator::runFor(Tick n)
{
    for (Tick i = 0; i < n; ++i)
        stepOne();
    return curTick();
}

} // namespace csb::sim
