#include "fault.hh"

#include "checkpoint.hh"
#include "logging.hh"

namespace csb::sim {

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::BusWriteNack: return "bus-write-nack";
      case FaultSite::BusReadNack: return "bus-read-nack";
      case FaultSite::BusError: return "bus-error";
      case FaultSite::WireDrop: return "wire-drop";
      case FaultSite::WireCorrupt: return "wire-corrupt";
      case FaultSite::AckDrop: return "ack-drop";
      case FaultSite::CsbFlushDrop: return "csb-flush-drop";
      case FaultSite::NumSites: break;
    }
    return "?";
}

double
FaultPlan::rate(FaultSite site) const
{
    switch (site) {
      case FaultSite::BusWriteNack: return busWriteNackRate;
      case FaultSite::BusReadNack: return busReadNackRate;
      case FaultSite::BusError: return busErrorRate;
      case FaultSite::WireDrop: return wireDropRate;
      case FaultSite::WireCorrupt: return wireCorruptRate;
      case FaultSite::AckDrop: return ackDropRate;
      case FaultSite::CsbFlushDrop: return csbFlushDropRate;
      case FaultSite::NumSites: break;
    }
    return 0;
}

bool
FaultPlan::enabled() const
{
    return busFaultsEnabled() || wireFaultsEnabled() || csbBugEnabled();
}

bool
FaultPlan::csbBugEnabled() const
{
    return csbFlushDropRate > 0;
}

bool
FaultPlan::busFaultsEnabled() const
{
    return busWriteNackRate > 0 || busReadNackRate > 0 || busErrorRate > 0;
}

bool
FaultPlan::wireFaultsEnabled() const
{
    return wireDropRate > 0 || wireCorruptRate > 0 || ackDropRate > 0;
}

void
FaultPlan::validate() const
{
    for (unsigned i = 0; i < static_cast<unsigned>(FaultSite::NumSites);
         ++i) {
        FaultSite site = static_cast<FaultSite>(i);
        double r = rate(site);
        if (r < 0.0 || r > 1.0) {
            csb_fatal("fault rate for ", faultSiteName(site),
                      " must be in [0,1], got ", r);
        }
    }
}

namespace {

/** Independent stream per site: golden-ratio offsets of the seed. */
std::uint64_t
siteSeed(std::uint64_t seed, unsigned site)
{
    return seed + (site + 1) * 0x9e3779b97f4a7c15ULL;
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan, std::string name,
                             stats::StatGroup *stat_parent)
    : stats::StatGroup(std::move(name), stat_parent),
      busWriteNacks(this, "busWriteNacks", "bus write NACKs injected"),
      busReadNacks(this, "busReadNacks", "bus read NACKs injected"),
      busErrors(this, "busErrors", "hard bus errors injected"),
      wireDrops(this, "wireDrops", "NI wire packets dropped"),
      wireCorruptions(this, "wireCorruptions",
                      "NI wire packets corrupted"),
      ackDrops(this, "ackDrops", "NI acknowledgments dropped"),
      csbFlushDrops(this, "csbFlushDrops",
                    "flushed CSB lines dropped (debug bug knob)"),
      plan_(plan)
{
    plan_.validate();
    for (unsigned i = 0; i < static_cast<unsigned>(FaultSite::NumSites);
         ++i) {
        streams_[i] = Random(siteSeed(plan_.seed, i));
    }
}

sim::stats::Scalar &
FaultInjector::counterFor(FaultSite site)
{
    switch (site) {
      case FaultSite::BusWriteNack: return busWriteNacks;
      case FaultSite::BusReadNack: return busReadNacks;
      case FaultSite::BusError: return busErrors;
      case FaultSite::WireDrop: return wireDrops;
      case FaultSite::WireCorrupt: return wireCorruptions;
      case FaultSite::AckDrop: return ackDrops;
      case FaultSite::CsbFlushDrop: return csbFlushDrops;
      case FaultSite::NumSites: break;
    }
    csb_panic("bad fault site");
}

bool
FaultInjector::shouldFault(FaultSite site)
{
    double r = plan_.rate(site);
    if (r <= 0.0)
        return false;
    bool fault = streams_[static_cast<unsigned>(site)].chance(r);
    if (fault)
        ++counterFor(site);
    return fault;
}

void
FaultInjector::checkpointSave(CheckpointWriter &cw) const
{
    for (const Random &stream : streams_) {
        for (std::uint64_t word : stream.rawState())
            cw.putU64(word);
    }
}

void
FaultInjector::checkpointRestore(CheckpointReader &cr)
{
    for (Random &stream : streams_) {
        std::array<std::uint64_t, 4> state;
        for (std::uint64_t &word : state)
            word = cr.getU64();
        stream.setRawState(state);
    }
}

} // namespace csb::sim
