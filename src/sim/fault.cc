#include "fault.hh"

#include <cctype>
#include <charconv>
#include <ostream>
#include <sstream>

#include "checkpoint.hh"
#include "logging.hh"

namespace csb::sim {

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::BusWriteNack: return "bus-write-nack";
      case FaultSite::BusReadNack: return "bus-read-nack";
      case FaultSite::BusError: return "bus-error";
      case FaultSite::WireDrop: return "wire-drop";
      case FaultSite::WireCorrupt: return "wire-corrupt";
      case FaultSite::AckDrop: return "ack-drop";
      case FaultSite::CsbFlushDrop: return "csb-flush-drop";
      case FaultSite::DeviceHang: return "device-hang";
      case FaultSite::NumSites: break;
    }
    return "?";
}

FaultSite
faultSiteFromName(const std::string &name)
{
    for (unsigned i = 0; i < static_cast<unsigned>(FaultSite::NumSites);
         ++i) {
        FaultSite site = static_cast<FaultSite>(i);
        if (name == faultSiteName(site))
            return site;
    }
    csb_fatal("unknown fault site '", name, "'");
}

double
FaultScheduleEntry::contributionAt(Tick now) const
{
    switch (kind) {
      case Kind::Burst:
        return (now >= start && now < end) ? rate : 0.0;
      case Kind::Brownout:
        if (now < start || now >= end)
            return 0.0;
        return ((now - start) % period) < onTicks ? rate : 0.0;
      case Kind::OneShot:
        // Stateful: handled by the injector's fired flags.
        return 0.0;
      case Kind::Storm: {
        if (now < start || now >= end)
            return 0.0;
        double r = rate;
        for (Tick n = (now - start) / period; n > 0 && r < 1.0; --n)
            r *= multiplier;
        return r < 1.0 ? r : 1.0;
      }
    }
    return 0.0;
}

void
FaultScheduleEntry::validate() const
{
    const char *site_name = faultSiteName(site);
    if (kind != Kind::OneShot && end <= start) {
        csb_fatal("fault schedule entry for ", site_name,
                  ": window end ", end, " must exceed start ", start);
    }
    if (kind != Kind::OneShot && (rate <= 0.0 || rate > 1.0)) {
        csb_fatal("fault schedule entry for ", site_name,
                  ": rate must be in (0,1], got ", rate);
    }
    if (kind == Kind::Brownout &&
        (period == 0 || onTicks == 0 || onTicks > period)) {
        csb_fatal("fault schedule brownout for ", site_name,
                  ": need 0 < on <= period, got on ", onTicks,
                  " period ", period);
    }
    if (kind == Kind::Storm && (period == 0 || multiplier < 1.0)) {
        csb_fatal("fault schedule storm for ", site_name,
                  ": need period > 0 and multiplier >= 1, got period ",
                  period, " multiplier ", multiplier);
    }
}

namespace {

std::string
formatRate(double r)
{
    std::ostringstream os;
    os << r;
    return os.str();
}

} // namespace

std::string
FaultScheduleEntry::spec() const
{
    std::ostringstream os;
    switch (kind) {
      case Kind::Burst:
        os << "burst:" << faultSiteName(site) << ':' << start << ".."
           << end << ':' << formatRate(rate);
        break;
      case Kind::Brownout:
        os << "brownout:" << faultSiteName(site) << ':' << start << ".."
           << end << ':' << period << '/' << onTicks << ':'
           << formatRate(rate);
        break;
      case Kind::OneShot:
        os << "oneshot:" << faultSiteName(site) << ':' << start;
        break;
      case Kind::Storm:
        os << "storm:" << faultSiteName(site) << ':' << start << ".."
           << end << ':' << formatRate(rate) << 'x'
           << formatRate(multiplier) << '/' << period;
        break;
    }
    return os.str();
}

std::string
faultScheduleSpec(const std::vector<FaultScheduleEntry> &schedule)
{
    std::string out;
    for (const FaultScheduleEntry &e : schedule) {
        if (!out.empty())
            out += ';';
        out += e.spec();
    }
    return out;
}

namespace {

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (true) {
        std::size_t at = text.find(sep, begin);
        if (at == std::string::npos) {
            parts.push_back(text.substr(begin));
            return parts;
        }
        parts.push_back(text.substr(begin, at - begin));
        begin = at + 1;
    }
}

Tick
parseTick(const std::string &text, const std::string &clause)
{
    Tick value = 0;
    auto [ptr, ec] = std::from_chars(text.data(),
                                     text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
        csb_fatal("fault schedule clause '", clause,
                  "': bad tick count '", text, "'");
    }
    return value;
}

double
parseRate(const std::string &text, const std::string &clause)
{
    try {
        std::size_t used = 0;
        double value = std::stod(text, &used);
        if (used == text.size())
            return value;
    } catch (const std::exception &) {
    }
    csb_fatal("fault schedule clause '", clause, "': bad rate '", text,
              "'");
}

/** Parse "A..B" into a [start, end) window. */
std::pair<Tick, Tick>
parseWindow(const std::string &text, const std::string &clause)
{
    std::size_t dots = text.find("..");
    if (dots == std::string::npos) {
        csb_fatal("fault schedule clause '", clause,
                  "': expected start..end window, got '", text, "'");
    }
    return {parseTick(text.substr(0, dots), clause),
            parseTick(text.substr(dots + 2), clause)};
}

void
requireFields(const std::vector<std::string> &fields, std::size_t n,
              const std::string &clause)
{
    if (fields.size() != n) {
        csb_fatal("fault schedule clause '", clause, "': expected ", n,
                  " ':'-separated fields, got ", fields.size());
    }
}

} // namespace

std::vector<FaultScheduleEntry>
parseFaultSchedule(const std::string &spec)
{
    std::vector<FaultScheduleEntry> schedule;
    for (const std::string &clause : splitOn(spec, ';')) {
        if (clause.empty())
            continue;
        std::vector<std::string> f = splitOn(clause, ':');
        const std::string &kind = f.front();
        FaultScheduleEntry e;
        if (kind == "burst") {
            requireFields(f, 4, clause);
            e.kind = FaultScheduleEntry::Kind::Burst;
            e.site = faultSiteFromName(f[1]);
            std::tie(e.start, e.end) = parseWindow(f[2], clause);
            e.rate = parseRate(f[3], clause);
        } else if (kind == "brownout") {
            requireFields(f, 5, clause);
            e.kind = FaultScheduleEntry::Kind::Brownout;
            e.site = faultSiteFromName(f[1]);
            std::tie(e.start, e.end) = parseWindow(f[2], clause);
            std::vector<std::string> duty = splitOn(f[3], '/');
            requireFields(duty, 2, clause);
            e.period = parseTick(duty[0], clause);
            e.onTicks = parseTick(duty[1], clause);
            e.rate = parseRate(f[4], clause);
        } else if (kind == "oneshot") {
            requireFields(f, 3, clause);
            e.kind = FaultScheduleEntry::Kind::OneShot;
            e.site = faultSiteFromName(f[1]);
            e.start = parseTick(f[2], clause);
        } else if (kind == "storm") {
            // storm:<site>:<start>..<end>:<rate>x<mult>/<period>
            requireFields(f, 4, clause);
            e.kind = FaultScheduleEntry::Kind::Storm;
            e.site = faultSiteFromName(f[1]);
            std::tie(e.start, e.end) = parseWindow(f[2], clause);
            std::size_t x = f[3].find('x');
            std::size_t slash = f[3].find('/', x == std::string::npos
                                                     ? 0 : x + 1);
            if (x == std::string::npos || slash == std::string::npos) {
                csb_fatal("fault schedule clause '", clause,
                          "': expected rate0xMULT/period, got '", f[3],
                          "'");
            }
            e.rate = parseRate(f[3].substr(0, x), clause);
            e.multiplier =
                parseRate(f[3].substr(x + 1, slash - x - 1), clause);
            e.period = parseTick(f[3].substr(slash + 1), clause);
        } else if (kind == "hang") {
            // Sugar: the device stops accepting for a window.
            requireFields(f, 2, clause);
            e.kind = FaultScheduleEntry::Kind::Burst;
            e.site = FaultSite::DeviceHang;
            std::tie(e.start, e.end) = parseWindow(f[1], clause);
            e.rate = 1.0;
        } else if (kind == "flap") {
            // Sugar: the NI link goes down for a window -- every
            // packet and every ack in flight is lost.
            requireFields(f, 2, clause);
            e.kind = FaultScheduleEntry::Kind::Burst;
            e.site = FaultSite::WireDrop;
            std::tie(e.start, e.end) = parseWindow(f[1], clause);
            e.rate = 1.0;
            schedule.push_back(e);
            e.site = FaultSite::AckDrop;
        } else {
            csb_fatal("fault schedule clause '", clause,
                      "': unknown kind '", kind, "'");
        }
        e.validate();
        schedule.push_back(e);
    }
    return schedule;
}

double
FaultPlan::rate(FaultSite site) const
{
    switch (site) {
      case FaultSite::BusWriteNack: return busWriteNackRate;
      case FaultSite::BusReadNack: return busReadNackRate;
      case FaultSite::BusError: return busErrorRate;
      case FaultSite::WireDrop: return wireDropRate;
      case FaultSite::WireCorrupt: return wireCorruptRate;
      case FaultSite::AckDrop: return ackDropRate;
      case FaultSite::CsbFlushDrop: return csbFlushDropRate;
      case FaultSite::DeviceHang: return deviceHangRate;
      case FaultSite::NumSites: break;
    }
    return 0;
}

bool
FaultPlan::scheduled(FaultSite site) const
{
    for (const FaultScheduleEntry &e : schedule) {
        if (e.site == site)
            return true;
    }
    return false;
}

bool
FaultPlan::enabled() const
{
    return busFaultsEnabled() || wireFaultsEnabled() || csbBugEnabled();
}

bool
FaultPlan::csbBugEnabled() const
{
    return csbFlushDropRate > 0 || scheduled(FaultSite::CsbFlushDrop);
}

bool
FaultPlan::busFaultsEnabled() const
{
    return busWriteNackRate > 0 || busReadNackRate > 0 ||
           busErrorRate > 0 || deviceHangRate > 0 ||
           scheduled(FaultSite::BusWriteNack) ||
           scheduled(FaultSite::BusReadNack) ||
           scheduled(FaultSite::BusError) ||
           scheduled(FaultSite::DeviceHang);
}

bool
FaultPlan::wireFaultsEnabled() const
{
    return wireDropRate > 0 || wireCorruptRate > 0 || ackDropRate > 0 ||
           scheduled(FaultSite::WireDrop) ||
           scheduled(FaultSite::WireCorrupt) ||
           scheduled(FaultSite::AckDrop);
}

std::uint64_t
FaultPlan::scheduleFingerprint() const
{
    // FNV-1a over the rendered spec: stable across builds, sensitive
    // to every entry field.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : faultScheduleSpec(schedule)) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
FaultPlan::validate() const
{
    for (unsigned i = 0; i < static_cast<unsigned>(FaultSite::NumSites);
         ++i) {
        FaultSite site = static_cast<FaultSite>(i);
        double r = rate(site);
        if (r < 0.0 || r > 1.0) {
            csb_fatal("fault rate for ", faultSiteName(site),
                      " must be in [0,1], got ", r);
        }
    }
    for (const FaultScheduleEntry &e : schedule)
        e.validate();
}

namespace {

/** Independent stream per site: golden-ratio offsets of the seed. */
std::uint64_t
siteSeed(std::uint64_t seed, unsigned site)
{
    return seed + (site + 1) * 0x9e3779b97f4a7c15ULL;
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan, std::string name,
                             stats::StatGroup *stat_parent)
    : stats::StatGroup(std::move(name), stat_parent),
      busWriteNacks(this, "busWriteNacks", "bus write NACKs injected"),
      busReadNacks(this, "busReadNacks", "bus read NACKs injected"),
      busErrors(this, "busErrors", "hard bus errors injected"),
      wireDrops(this, "wireDrops", "NI wire packets dropped"),
      wireCorruptions(this, "wireCorruptions",
                      "NI wire packets corrupted"),
      ackDrops(this, "ackDrops", "NI acknowledgments dropped"),
      csbFlushDrops(this, "csbFlushDrops",
                    "flushed CSB lines dropped (debug bug knob)"),
      deviceHangNacks(this, "deviceHangNacks",
                      "device-hang NACKs injected"),
      plan_(plan)
{
    plan_.validate();
    for (unsigned i = 0; i < static_cast<unsigned>(FaultSite::NumSites);
         ++i) {
        streams_[i] = Random(siteSeed(plan_.seed, i));
    }
    for (std::uint32_t ei = 0; ei < plan_.schedule.size(); ++ei)
        entriesFor_[static_cast<unsigned>(plan_.schedule[ei].site)]
            .push_back(ei);
    oneShotFired_.assign(plan_.schedule.size(), 0);
}

sim::stats::Scalar &
FaultInjector::counterFor(FaultSite site)
{
    switch (site) {
      case FaultSite::BusWriteNack: return busWriteNacks;
      case FaultSite::BusReadNack: return busReadNacks;
      case FaultSite::BusError: return busErrors;
      case FaultSite::WireDrop: return wireDrops;
      case FaultSite::WireCorrupt: return wireCorruptions;
      case FaultSite::AckDrop: return ackDrops;
      case FaultSite::CsbFlushDrop: return csbFlushDrops;
      case FaultSite::DeviceHang: return deviceHangNacks;
      case FaultSite::NumSites: break;
    }
    csb_panic("bad fault site");
}

const sim::stats::Scalar &
FaultInjector::counterFor(FaultSite site) const
{
    return const_cast<FaultInjector *>(this)->counterFor(site);
}

bool
FaultInjector::shouldFault(FaultSite site, Tick now)
{
    unsigned idx = static_cast<unsigned>(site);
    const std::vector<std::uint32_t> &entries = entriesFor_[idx];
    if (entries.empty()) {
        // Pre-schedule fast path: bit-for-bit identical draw sequence
        // to a plan with no schedule at all.
        double r = plan_.rate(site);
        if (r <= 0.0)
            return false;
        bool fault = streams_[idx].chance(r);
        if (fault)
            ++counterFor(site);
        return fault;
    }

    double r = plan_.rate(site);
    bool forced = false;
    for (std::uint32_t ei : entries) {
        const FaultScheduleEntry &e = plan_.schedule[ei];
        if (e.kind == FaultScheduleEntry::Kind::OneShot) {
            if (!oneShotFired_[ei] && now >= e.start) {
                oneShotFired_[ei] = 1;
                forced = true;
            }
        } else {
            r += e.contributionAt(now);
        }
    }
    if (forced || r >= 1.0) {
        // Deterministic injection: never consumes a draw, so rate-1.0
        // windows leave the site's stream untouched for later
        // probabilistic phases.
        ++counterFor(site);
        return true;
    }
    if (r <= 0.0)
        return false;
    bool fault = streams_[idx].chance(r);
    if (fault)
        ++counterFor(site);
    return fault;
}

double
FaultInjector::effectiveRate(FaultSite site, Tick now) const
{
    unsigned idx = static_cast<unsigned>(site);
    double r = plan_.rate(site);
    for (std::uint32_t ei : entriesFor_[idx]) {
        const FaultScheduleEntry &e = plan_.schedule[ei];
        if (e.kind != FaultScheduleEntry::Kind::OneShot)
            r += e.contributionAt(now);
    }
    return r < 1.0 ? r : 1.0;
}

std::uint64_t
FaultInjector::injectedAt(FaultSite site) const
{
    return static_cast<std::uint64_t>(counterFor(site).value());
}

void
FaultInjector::debugDump(std::ostream &os) const
{
    os << "  faults:";
    bool any = false;
    for (unsigned i = 0; i < static_cast<unsigned>(FaultSite::NumSites);
         ++i) {
        FaultSite site = static_cast<FaultSite>(i);
        std::uint64_t n = injectedAt(site);
        if (n == 0)
            continue;
        os << ' ' << faultSiteName(site) << '=' << n;
        any = true;
    }
    if (!any)
        os << " none injected";
    os << '\n';
    for (std::uint32_t ei = 0; ei < plan_.schedule.size(); ++ei) {
        const FaultScheduleEntry &e = plan_.schedule[ei];
        os << "    schedule[" << ei << "] " << e.spec();
        if (e.kind == FaultScheduleEntry::Kind::OneShot)
            os << (oneShotFired_[ei] ? " (fired)" : " (pending)");
        os << '\n';
    }
}

void
FaultInjector::checkpointSave(CheckpointWriter &cw) const
{
    for (const Random &stream : streams_) {
        for (std::uint64_t word : stream.rawState())
            cw.putU64(word);
    }
    // One-shot fired flags: stateful schedule entries must resume
    // exactly where the checkpointed run left them.
    cw.putU32(static_cast<std::uint32_t>(oneShotFired_.size()));
    for (std::uint8_t fired : oneShotFired_)
        cw.putU8(fired);
}

void
FaultInjector::checkpointRestore(CheckpointReader &cr)
{
    for (Random &stream : streams_) {
        std::array<std::uint64_t, 4> state;
        for (std::uint64_t &word : state)
            word = cr.getU64();
        stream.setRawState(state);
    }
    std::uint32_t flags = cr.getU32();
    if (flags != oneShotFired_.size()) {
        csb_fatal("fault checkpoint carries ", flags,
                  " one-shot flags but the plan has ",
                  oneShotFired_.size());
    }
    for (std::uint8_t &fired : oneShotFired_)
        fired = cr.getU8();
}

} // namespace csb::sim
