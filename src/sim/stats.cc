#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "checkpoint.hh"
#include "json.hh"

namespace csb::sim::stats {

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    csb_assert(parent != nullptr, "stat '", name_, "' needs a group");
    parent->stats_.push_back(this);
}

namespace {

void
emit(std::ostream &os, const std::string &prefix, const std::string &name,
     double value, const std::string &desc)
{
    os << std::left << std::setw(44) << (prefix + name) << " "
       << std::right << std::setw(14) << value << "  # " << desc << "\n";
}

} // namespace

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name(), value_, desc());
}

void
Scalar::dumpJson(JsonWriter &jw) const
{
    jw.beginObject();
    jw.kv("type", "scalar");
    jw.kv("desc", desc());
    jw.kv("value", value_);
    jw.endObject();
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name(), value(), desc());
}

void
Average::dumpJson(JsonWriter &jw) const
{
    jw.beginObject();
    jw.kv("type", "average");
    jw.kv("desc", desc());
    jw.kv("value", value());
    jw.kv("sum", sum_);
    jw.kv("count", count_);
    jw.endObject();
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double min, double max,
                           double bucket_size)
    : StatBase(parent, std::move(name), std::move(desc)),
      min_(min), max_(max), bucketSize_(bucket_size)
{
    csb_assert(max > min && bucket_size > 0, "bad distribution shape");
    buckets_.resize(static_cast<std::size_t>((max - min) / bucket_size) + 1);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (samples_ == 0) {
        minSampled_ = v;
        maxSampled_ = v;
    } else {
        minSampled_ = std::min(minSampled_, v);
        maxSampled_ = std::max(maxSampled_, v);
    }
    samples_ += count;
    sum_ += v * count;
    if (v < min_) {
        underflow_ += count;
    } else if (v > max_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<std::size_t>((v - min_) / bucketSize_);
        idx = std::min(idx, buckets_.size() - 1);
        buckets_[idx] += count;
    }
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name() + "::samples",
         static_cast<double>(samples_), desc());
    emit(os, prefix, name() + "::mean", mean(), desc());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        std::ostringstream bucket_name;
        bucket_name << name() << "::" << (min_ + i * bucketSize_);
        emit(os, prefix, bucket_name.str(),
             static_cast<double>(buckets_[i]), desc());
    }
    if (underflow_)
        emit(os, prefix, name() + "::underflow",
             static_cast<double>(underflow_), desc());
    if (overflow_)
        emit(os, prefix, name() + "::overflow",
             static_cast<double>(overflow_), desc());
}

double
Distribution::percentile(double p) const
{
    if (samples_ == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 1.0);
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(samples_)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cum = underflow_;
    if (rank <= cum)
        return minSampled_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (rank <= cum)
            return std::min(min_ + (i + 1) * bucketSize_, max_);
    }
    return maxSampled_;
}

void
Distribution::dumpJson(JsonWriter &jw) const
{
    jw.beginObject();
    jw.kv("type", "distribution");
    jw.kv("desc", desc());
    jw.kv("min", min_);
    jw.kv("max", max_);
    jw.kv("bucket_size", bucketSize_);
    jw.kv("samples", samples_);
    jw.kv("mean", mean());
    jw.kv("min_sampled", minSampled_);
    jw.kv("max_sampled", maxSampled_);
    jw.kv("underflow", underflow_);
    jw.kv("overflow", overflow_);
    jw.kv("p50", percentile(0.50));
    jw.kv("p90", percentile(0.90));
    jw.kv("p99", percentile(0.99));
    jw.key("buckets");
    jw.beginArray();
    for (std::uint64_t b : buckets_)
        jw.value(b);
    jw.endArray();
    jw.endObject();
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0;
    minSampled_ = 0;
    maxSampled_ = 0;
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name(), value(), desc());
}

void
Formula::dumpJson(JsonWriter &jw) const
{
    jw.beginObject();
    jw.kv("type", "formula");
    jw.kv("desc", desc());
    jw.kv("value", value());
    jw.endObject();
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

StatGroup::~StatGroup()
{
    if (parent_) {
        auto &siblings = parent_->children_;
        siblings.erase(std::remove(siblings.begin(), siblings.end(), this),
                       siblings.end());
    }
}

std::string
StatGroup::fullStatName() const
{
    if (!parent_)
        return name_;
    std::string parent_name = parent_->fullStatName();
    return parent_name.empty() ? name_ : parent_name + "." + name_;
}

void
StatGroup::dumpStats(std::ostream &os) const
{
    std::string prefix = fullStatName();
    if (!prefix.empty())
        prefix += ".";
    for (const StatBase *stat : stats_)
        stat->dump(os, prefix);
    for (const StatGroup *child : children_)
        child->dumpStats(os);
}

void
StatGroup::dumpJson(JsonWriter &jw) const
{
    jw.beginObject();
    for (const StatBase *stat : stats_) {
        jw.key(stat->name());
        stat->dumpJson(jw);
    }
    for (const StatGroup *child : children_) {
        jw.key(child->statName());
        child->dumpJson(jw);
    }
    jw.endObject();
}

void
StatGroup::dumpStatsJson(std::ostream &os, int indent) const
{
    JsonWriter jw(os, indent);
    dumpJson(jw);
    os << "\n";
}

void
StatGroup::resetStats()
{
    for (StatBase *stat : stats_)
        stat->reset();
    for (StatGroup *child : children_)
        child->resetStats();
}

const StatBase *
StatGroup::findStat(const std::string &name) const
{
    for (const StatBase *stat : stats_) {
        if (stat->name() == name)
            return stat;
    }
    return nullptr;
}

void
Scalar::checkpointSave(CheckpointWriter &cw) const
{
    cw.putF64(value_);
}

void
Scalar::checkpointRestore(CheckpointReader &cr)
{
    value_ = cr.getF64();
}

void
Average::checkpointSave(CheckpointWriter &cw) const
{
    cw.putF64(sum_);
    cw.putU64(count_);
}

void
Average::checkpointRestore(CheckpointReader &cr)
{
    sum_ = cr.getF64();
    count_ = cr.getU64();
}

void
Distribution::checkpointSave(CheckpointWriter &cw) const
{
    cw.putU64(buckets_.size());
    for (std::uint64_t bucket : buckets_)
        cw.putU64(bucket);
    cw.putU64(underflow_);
    cw.putU64(overflow_);
    cw.putU64(samples_);
    cw.putF64(sum_);
    cw.putF64(minSampled_);
    cw.putF64(maxSampled_);
}

void
Distribution::checkpointRestore(CheckpointReader &cr)
{
    const std::uint64_t n = cr.getU64();
    if (n != buckets_.size())
        csb_fatal("checkpoint distribution '", name(), "' has ", n,
                  " buckets, this configuration has ", buckets_.size());
    for (std::uint64_t &bucket : buckets_)
        bucket = cr.getU64();
    underflow_ = cr.getU64();
    overflow_ = cr.getU64();
    samples_ = cr.getU64();
    sum_ = cr.getF64();
    minSampled_ = cr.getF64();
    maxSampled_ = cr.getF64();
}

void
StatGroup::checkpointSaveStats(CheckpointWriter &cw) const
{
    for (const StatBase *stat : stats_) {
        cw.putStr(stat->name());
        cw.putU8(stat->checkpointTag());
        stat->checkpointSave(cw);
    }
    for (const StatGroup *child : children_) {
        cw.putStr(child->statName());
        child->checkpointSaveStats(cw);
    }
}

void
StatGroup::checkpointRestoreStats(CheckpointReader &cr)
{
    for (StatBase *stat : stats_) {
        const std::string name = cr.getStr();
        if (name != stat->name())
            csb_fatal("checkpoint stat mismatch in group '",
                      fullStatName(), "': expected '", stat->name(),
                      "', found '", name, "'");
        const std::uint8_t tag = cr.getU8();
        if (tag != stat->checkpointTag())
            csb_fatal("checkpoint stat '", name, "' has type tag ",
                      unsigned(tag), ", this build expects ",
                      unsigned(stat->checkpointTag()));
        stat->checkpointRestore(cr);
    }
    for (StatGroup *child : children_) {
        const std::string name = cr.getStr();
        if (name != child->statName())
            csb_fatal("checkpoint group mismatch in '", fullStatName(),
                      "': expected '", child->statName(), "', found '",
                      name, "'");
        child->checkpointRestoreStats(cr);
    }
}

} // namespace csb::sim::stats
