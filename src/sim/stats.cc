#include "stats.hh"

#include <algorithm>
#include <iomanip>

namespace csb::sim::stats {

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    csb_assert(parent != nullptr, "stat '", name_, "' needs a group");
    parent->stats_.push_back(this);
}

namespace {

void
emit(std::ostream &os, const std::string &prefix, const std::string &name,
     double value, const std::string &desc)
{
    os << std::left << std::setw(44) << (prefix + name) << " "
       << std::right << std::setw(14) << value << "  # " << desc << "\n";
}

} // namespace

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name(), value_, desc());
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name(), value(), desc());
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double min, double max,
                           double bucket_size)
    : StatBase(parent, std::move(name), std::move(desc)),
      min_(min), max_(max), bucketSize_(bucket_size)
{
    csb_assert(max > min && bucket_size > 0, "bad distribution shape");
    buckets_.resize(static_cast<std::size_t>((max - min) / bucket_size) + 1);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (samples_ == 0) {
        minSampled_ = v;
        maxSampled_ = v;
    } else {
        minSampled_ = std::min(minSampled_, v);
        maxSampled_ = std::max(maxSampled_, v);
    }
    samples_ += count;
    sum_ += v * count;
    if (v < min_) {
        underflow_ += count;
    } else if (v > max_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<std::size_t>((v - min_) / bucketSize_);
        idx = std::min(idx, buckets_.size() - 1);
        buckets_[idx] += count;
    }
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name() + "::samples",
         static_cast<double>(samples_), desc());
    emit(os, prefix, name() + "::mean", mean(), desc());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        std::ostringstream bucket_name;
        bucket_name << name() << "::" << (min_ + i * bucketSize_);
        emit(os, prefix, bucket_name.str(),
             static_cast<double>(buckets_[i]), desc());
    }
    if (underflow_)
        emit(os, prefix, name() + "::underflow",
             static_cast<double>(underflow_), desc());
    if (overflow_)
        emit(os, prefix, name() + "::overflow",
             static_cast<double>(overflow_), desc());
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0;
    minSampled_ = 0;
    maxSampled_ = 0;
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name(), value(), desc());
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

StatGroup::~StatGroup()
{
    if (parent_) {
        auto &siblings = parent_->children_;
        siblings.erase(std::remove(siblings.begin(), siblings.end(), this),
                       siblings.end());
    }
}

std::string
StatGroup::fullStatName() const
{
    if (!parent_)
        return name_;
    std::string parent_name = parent_->fullStatName();
    return parent_name.empty() ? name_ : parent_name + "." + name_;
}

void
StatGroup::dumpStats(std::ostream &os) const
{
    std::string prefix = fullStatName();
    if (!prefix.empty())
        prefix += ".";
    for (const StatBase *stat : stats_)
        stat->dump(os, prefix);
    for (const StatGroup *child : children_)
        child->dumpStats(os);
}

void
StatGroup::resetStats()
{
    for (StatBase *stat : stats_)
        stat->reset();
    for (StatGroup *child : children_)
        child->resetStats();
}

const StatBase *
StatGroup::findStat(const std::string &name) const
{
    for (const StatBase *stat : stats_) {
        if (stat->name() == name)
            return stat;
    }
    return nullptr;
}

} // namespace csb::sim::stats
