/**
 * @file
 * Error / status reporting in the spirit of gem5's logging.hh.
 *
 * panic()  -- an internal simulator invariant was violated (a bug);
 *             aborts the process.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid parameters); throws
 *             FatalError so that tests can assert on misconfiguration.
 * warn()   -- something may be modelled imprecisely; keep running.
 * inform() -- plain status output.
 */

#ifndef CSB_SIM_LOGGING_HH
#define CSB_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace csb {

/** Exception thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Control whether warn()/inform() print to stderr (tests silence them). */
void setLogQuiet(bool quiet);
bool logQuiet();

} // namespace csb

#define csb_panic(...) \
    ::csb::detail::panicImpl(__FILE__, __LINE__, \
                             ::csb::detail::concat(__VA_ARGS__))

#define csb_fatal(...) \
    ::csb::detail::fatalImpl(__FILE__, __LINE__, \
                             ::csb::detail::concat(__VA_ARGS__))

#define csb_warn(...) \
    ::csb::detail::warnImpl(::csb::detail::concat(__VA_ARGS__))

#define csb_inform(...) \
    ::csb::detail::informImpl(::csb::detail::concat(__VA_ARGS__))

/** Panic unless a simulator invariant holds. */
#define csb_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::csb::detail::panicImpl(__FILE__, __LINE__, \
                ::csb::detail::concat("assertion '", #cond, \
                                      "' failed ", ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // CSB_SIM_LOGGING_HH
