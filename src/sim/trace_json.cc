#include "trace_json.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>

#include "json.hh"

namespace csb::sim::trace {

namespace {

struct JsonEvent
{
    std::string track;
    std::string name;
    Tick ts;
    Tick dur;       // 0 for instant events
    bool instant;
    std::vector<SpanArg> args;
};

struct TraceJsonState
{
    std::ostream *out = nullptr;            // active sink, if any
    std::unique_ptr<std::ofstream> file;    // owned when env/file-based
    std::vector<JsonEvent> events;
    bool envLoaded = false;

    ~TraceJsonState()
    {
        // Flush the env-configured file sink at exit; a test-provided
        // ostream may already be dead by now, so only the owned file
        // is safe to touch.
        if (file && file->is_open())
            flushTo(*file);
    }

    void
    flushTo(std::ostream &os)
    {
        std::stable_sort(events.begin(), events.end(),
                         [](const JsonEvent &a, const JsonEvent &b) {
                             return a.ts < b.ts;
                         });

        // Assign tids per track in first-seen order so related spans
        // share a row in the viewer.
        std::map<std::string, int> tids;
        std::vector<std::string> track_order;
        for (const JsonEvent &ev : events) {
            if (tids.emplace(ev.track, int(tids.size()) + 1).second)
                track_order.push_back(ev.track);
        }

        JsonWriter jw(os, 0);
        jw.beginObject();
        jw.kv("displayTimeUnit", "ms");
        jw.key("traceEvents");
        jw.beginArray();
        for (std::size_t i = 0; i < track_order.size(); ++i) {
            jw.beginObject();
            jw.kv("name", "thread_name");
            jw.kv("ph", "M");
            jw.kv("pid", 0);
            jw.kv("tid", tids[track_order[i]]);
            jw.key("args").beginObject();
            jw.kv("name", track_order[i]);
            jw.endObject();
            jw.endObject();
        }
        for (const JsonEvent &ev : events) {
            jw.beginObject();
            jw.kv("name", ev.name);
            jw.kv("cat", ev.track);
            jw.kv("ph", ev.instant ? "i" : "X");
            jw.kv("ts", ev.ts);
            if (!ev.instant)
                jw.kv("dur", ev.dur);
            else
                jw.kv("s", "t");
            jw.kv("pid", 0);
            jw.kv("tid", tids[ev.track]);
            if (!ev.args.empty()) {
                jw.key("args").beginObject();
                for (const SpanArg &arg : ev.args)
                    jw.kv(arg.key, arg.value);
                jw.endObject();
            }
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
        os << "\n";
        os.flush();
        events.clear();
    }
};

TraceJsonState &
state()
{
    static TraceJsonState instance;
    return instance;
}

void
loadEnvOnce()
{
    TraceJsonState &s = state();
    if (s.envLoaded)
        return;
    s.envLoaded = true;
    const char *env = std::getenv("CSBSIM_TRACE_JSON");
    if (env && *env)
        jsonEnableFile(env);
}

} // namespace

bool
jsonEnabled()
{
    loadEnvOnce();
    return state().out != nullptr;
}

void
jsonEnable(std::ostream *os)
{
    TraceJsonState &s = state();
    s.envLoaded = true; // explicit control overrides lazy env load
    s.file.reset();
    s.out = os;
}

void
jsonEnableFile(const std::string &path)
{
    TraceJsonState &s = state();
    s.envLoaded = true;
    if (path.empty()) {
        jsonDisable();
        return;
    }
    auto file = std::make_unique<std::ofstream>(path);
    if (!file->is_open()) {
        std::fprintf(stderr,
                     "csbsim: cannot open CSBSIM_TRACE_JSON file '%s'\n",
                     path.c_str());
        return;
    }
    s.file = std::move(file);
    s.out = s.file.get();
}

void
jsonDisable()
{
    TraceJsonState &s = state();
    s.envLoaded = true;
    s.events.clear();
    s.out = nullptr;
    s.file.reset();
}

void
jsonFlush()
{
    TraceJsonState &s = state();
    if (s.out == nullptr) {
        s.events.clear();
        return;
    }
    s.flushTo(*s.out);
}

std::size_t
jsonPendingEvents()
{
    return state().events.size();
}

void
jsonSpan(const std::string &track, const std::string &name,
         Tick start, Tick end, std::vector<SpanArg> args)
{
    if (!jsonEnabled())
        return;
    Tick dur = end > start ? end - start : 1;
    state().events.push_back(
        {track, name, start, dur, false, std::move(args)});
}

void
jsonInstant(const std::string &track, const std::string &name,
            Tick ts, std::vector<SpanArg> args)
{
    if (!jsonEnabled())
        return;
    state().events.push_back({track, name, ts, 0, true, std::move(args)});
}

std::string
hexArg(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace csb::sim::trace
