#include "trace_json.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "json.hh"

namespace csb::sim::trace {

namespace {

struct JsonEvent
{
    std::string track;
    std::string name;
    Tick ts;
    Tick dur;       // 0 for instant events
    bool instant;
    std::vector<SpanArg> args;
};

/**
 * The event buffer is process-wide (one trace file per process), so
 * it is mutex-guarded: concurrent Simulator instances may append
 * spans from sweep worker threads.  The disabled fast path reads a
 * single relaxed atomic.
 */
struct TraceJsonState
{
    std::mutex mutex;
    std::atomic<bool> enabled{false};       // mirrors out != nullptr
    std::ostream *out = nullptr;            // active sink, if any
    std::unique_ptr<std::ofstream> file;    // owned when env/file-based
    std::vector<JsonEvent> events;
    std::atomic<bool> envLoaded{false};

    ~TraceJsonState()
    {
        // Flush the env-configured file sink at exit; a test-provided
        // ostream may already be dead by now, so only the owned file
        // is safe to touch.  Threads are gone at static destruction,
        // so no lock is needed (or safe) here.
        if (file && file->is_open())
            flushTo(*file);
    }

    /** Caller holds mutex (except the static destructor above). */
    void
    flushTo(std::ostream &os)
    {
        std::stable_sort(events.begin(), events.end(),
                         [](const JsonEvent &a, const JsonEvent &b) {
                             return a.ts < b.ts;
                         });

        // Assign tids per track in first-seen order so related spans
        // share a row in the viewer.
        std::map<std::string, int> tids;
        std::vector<std::string> track_order;
        for (const JsonEvent &ev : events) {
            if (tids.emplace(ev.track, int(tids.size()) + 1).second)
                track_order.push_back(ev.track);
        }

        JsonWriter jw(os, 0);
        jw.beginObject();
        jw.kv("displayTimeUnit", "ms");
        jw.key("traceEvents");
        jw.beginArray();
        for (std::size_t i = 0; i < track_order.size(); ++i) {
            jw.beginObject();
            jw.kv("name", "thread_name");
            jw.kv("ph", "M");
            jw.kv("pid", 0);
            jw.kv("tid", tids[track_order[i]]);
            jw.key("args").beginObject();
            jw.kv("name", track_order[i]);
            jw.endObject();
            jw.endObject();
        }
        for (const JsonEvent &ev : events) {
            jw.beginObject();
            jw.kv("name", ev.name);
            jw.kv("cat", ev.track);
            jw.kv("ph", ev.instant ? "i" : "X");
            jw.kv("ts", ev.ts);
            if (!ev.instant)
                jw.kv("dur", ev.dur);
            else
                jw.kv("s", "t");
            jw.kv("pid", 0);
            jw.kv("tid", tids[ev.track]);
            if (!ev.args.empty()) {
                jw.key("args").beginObject();
                for (const SpanArg &arg : ev.args)
                    jw.kv(arg.key, arg.value);
                jw.endObject();
            }
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
        os << "\n";
        os.flush();
        events.clear();
    }
};

TraceJsonState &
state()
{
    static TraceJsonState instance;
    return instance;
}

void enableFileLocked(TraceJsonState &s, const std::string &path);

void
loadEnvOnce()
{
    TraceJsonState &s = state();
    if (s.envLoaded.load(std::memory_order_acquire))
        return;
    const char *env = std::getenv("CSBSIM_TRACE_JSON");
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.envLoaded.load(std::memory_order_relaxed))
        return; // another thread (or an explicit jsonEnable*) won
    if (env && *env)
        enableFileLocked(s, env);
    s.envLoaded.store(true, std::memory_order_release);
}

void
enableFileLocked(TraceJsonState &s, const std::string &path)
{
    auto file = std::make_unique<std::ofstream>(path);
    if (!file->is_open()) {
        std::fprintf(stderr,
                     "csbsim: cannot open CSBSIM_TRACE_JSON file '%s'\n",
                     path.c_str());
        return;
    }
    s.file = std::move(file);
    s.out = s.file.get();
    s.enabled.store(true, std::memory_order_relaxed);
}

} // namespace

bool
jsonEnabled()
{
    loadEnvOnce();
    return state().enabled.load(std::memory_order_relaxed);
}

void
jsonEnable(std::ostream *os)
{
    TraceJsonState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.envLoaded.store(true, std::memory_order_release);
    s.file.reset();
    s.out = os;
    s.enabled.store(os != nullptr, std::memory_order_relaxed);
}

void
jsonEnableFile(const std::string &path)
{
    TraceJsonState &s = state();
    if (path.empty()) {
        jsonDisable();
        return;
    }
    std::lock_guard<std::mutex> lock(s.mutex);
    s.envLoaded.store(true, std::memory_order_release);
    enableFileLocked(s, path);
}

void
jsonDisable()
{
    TraceJsonState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.envLoaded.store(true, std::memory_order_release);
    s.events.clear();
    s.out = nullptr;
    s.file.reset();
    s.enabled.store(false, std::memory_order_relaxed);
}

void
jsonFlush()
{
    TraceJsonState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.out == nullptr) {
        s.events.clear();
        return;
    }
    s.flushTo(*s.out);
}

std::size_t
jsonPendingEvents()
{
    TraceJsonState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.events.size();
}

void
jsonSpan(const std::string &track, const std::string &name,
         Tick start, Tick end, std::vector<SpanArg> args)
{
    if (!jsonEnabled())
        return;
    Tick dur = end > start ? end - start : 1;
    TraceJsonState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.push_back({track, name, start, dur, false, std::move(args)});
}

void
jsonInstant(const std::string &track, const std::string &name,
            Tick ts, std::vector<SpanArg> args)
{
    if (!jsonEnabled())
        return;
    TraceJsonState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.push_back({track, name, ts, 0, true, std::move(args)});
}

std::string
hexArg(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace csb::sim::trace
