/**
 * @file
 * Top-level simulation driver combining a cycle loop with a discrete
 * event queue.
 */

#ifndef CSB_SIM_SIMULATOR_HH
#define CSB_SIM_SIMULATOR_HH

#include <functional>
#include <vector>

#include "clocked.hh"
#include "event_queue.hh"
#include "types.hh"

namespace csb::sim {

/**
 * Owns simulated time.  Each tick: first all events scheduled for the
 * tick fire, then every registered Clocked object whose domain has an
 * edge at the tick is evaluated in evalOrder.
 */
class Simulator
{
  public:
    Simulator();
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current time in CPU cycles. */
    Tick curTick() const { return events_.curTick(); }

    /** The shared event queue (for latency callbacks). */
    EventQueue &eventQueue() { return events_; }

    /** Register a cycle-driven object.  Not owned. */
    void registerClocked(Clocked *obj);

    /**
     * Run until @p done returns true (checked after every tick) or
     * @p max_ticks elapse.
     * @return the tick at which the run stopped.
     */
    Tick run(const std::function<bool()> &done, Tick max_ticks = 10'000'000);

    /** Run for exactly @p n ticks. */
    Tick runFor(Tick n);

    /** Advance a single tick (events then clocked evaluation). */
    void stepOne();

    /** Number of Clocked objects registered. */
    std::size_t numClocked() const { return clocked_.size(); }

  private:
    EventQueue events_;
    std::vector<Clocked *> clocked_;
    bool order_dirty_ = false;
};

} // namespace csb::sim

#endif // CSB_SIM_SIMULATOR_HH
