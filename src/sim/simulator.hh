/**
 * @file
 * Top-level simulation driver combining a cycle loop with a discrete
 * event queue.
 */

#ifndef CSB_SIM_SIMULATOR_HH
#define CSB_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "clocked.hh"
#include "event_queue.hh"
#include "types.hh"

namespace csb::sim {

/**
 * Owns simulated time.  Each tick: first all events scheduled for the
 * tick fire, then every registered Clocked object whose domain has an
 * edge at the tick is evaluated in evalOrder.
 */
class Simulator
{
  public:
    Simulator();
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current time in CPU cycles. */
    Tick curTick() const { return events_.curTick(); }

    /** The shared event queue (for latency callbacks). */
    EventQueue &eventQueue() { return events_; }

    /** Register a cycle-driven object.  Not owned. */
    void registerClocked(Clocked *obj);

    /**
     * Run until @p done returns true (checked after every tick) or
     * @p max_ticks elapse.
     * @return the tick at which the run stopped.
     */
    Tick run(const std::function<bool()> &done, Tick max_ticks = 10'000'000);

    /** Run for exactly @p n ticks. */
    Tick runFor(Tick n);

    /** Advance a single tick (events then clocked evaluation). */
    void stepOne();

    /** Number of Clocked objects registered. */
    std::size_t numClocked() const { return clocked_.size(); }

    /** Number of registered Clocked objects currently clock-gated. */
    std::size_t numGated() const { return gatedCount_; }

    /**
     * Ticks skipped by the quiescent-system fast-forward: when every
     * registered component is gated, run()/runFor() jump straight to
     * the next event instead of stepping empty ticks one by one.
     */
    std::uint64_t fastForwardedTicks() const { return fastForwardedTicks_; }

    /**
     * Allow run() to fast-forward over quiescent spans.  Off by
     * default because run()'s contract is to evaluate the done
     * predicate at every tick: only enable it when the predicate
     * depends solely on component/event state, not on curTick().
     * runFor() always fast-forwards -- with no predicate to consult,
     * skipping ticks nothing would act on is unobservable.
     */
    void setIdleFastForward(bool enable) { idleFastForward_ = enable; }

    bool idleFastForward() const { return idleFastForward_; }

    /**
     * Arm the forward-progress watchdog: when run() observes
     * @p window ticks with no call to noteProgress(), it throws a
     * diagnostic FatalError that dumps the event queue and every
     * registered component's debugDump().  0 disables (the default).
     */
    void setWatchdog(Tick window) { watchdogWindow_ = window; }

    Tick watchdogWindow() const { return watchdogWindow_; }

    /**
     * Components call this when they make observable forward
     * progress (an instruction retires, a bus transaction starts).
     * Feeds the watchdog; free when the watchdog is disarmed.
     */
    void noteProgress() { lastProgressTick_ = curTick(); }

    /**
     * Times run() returned with the done-predicate still false (the
     * tick budget was exhausted before the workload finished).
     */
    std::uint64_t tickLimitHits() const { return tickLimitHits_; }

    /**
     * Jump simulated time to @p when as part of checkpoint restore
     * (docs/CHECKPOINT.md): only legal while the event queue is empty,
     * i.e. on a freshly built system before anything is scheduled.
     * Counts as forward progress for the watchdog.
     */
    void
    restoreTick(Tick when)
    {
        csb_assert(events_.empty(),
                   "restoreTick with events pending");
        events_.advanceTo(when);
        lastProgressTick_ = when;
    }

  private:
    friend class Clocked;

    [[noreturn]] void watchdogFire(Tick start);

    void noteGated();
    void noteUngated();

    /**
     * When the whole system is quiescent, @return how many ticks
     * beyond curTick() can be skipped without changing behaviour
     * (clamped to @p budget_left ticks remaining and the watchdog
     * deadline); 0 when stepping must proceed tick by tick.
     */
    Tick quiescentJump(Tick budget_left) const;

    EventQueue events_;
    std::vector<Clocked *> clocked_;
    bool order_dirty_ = false;
    Tick watchdogWindow_ = 0;
    Tick lastProgressTick_ = 0;
    std::uint64_t tickLimitHits_ = 0;
    std::size_t gatedCount_ = 0;
    std::uint64_t fastForwardedTicks_ = 0;
    bool idleFastForward_ = false;
};

} // namespace csb::sim

#endif // CSB_SIM_SIMULATOR_HH
