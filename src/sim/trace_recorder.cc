/**
 * @file
 * CSBT v1 serialization (see docs/TRACE_FORMAT.md for the normative
 * layout).  All multi-byte fields are little-endian and are encoded
 * byte-by-byte, so the writer/reader pair is host-endian independent.
 */

#include "trace_recorder.hh"

#include <cstddef>
#include <fstream>
#include <ostream>

#include "logging.hh"

namespace csb::sim {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'B', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kRecordSize = 32;
constexpr std::size_t kHeaderSize = 40;

void
putLe(std::uint8_t *out, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        out[i] = std::uint8_t(v >> (8 * i));
}

std::uint64_t
getLe(const std::uint8_t *in, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= std::uint64_t(in[i]) << (8 * i);
    return v;
}

void
encodeRecord(const TraceRecord &rec, std::uint8_t out[kRecordSize])
{
    putLe(out + 0, rec.tick, 8);
    putLe(out + 8, rec.addr, 8);
    putLe(out + 16, rec.value, 8);
    putLe(out + 24, rec.pid, 4);
    out[28] = std::uint8_t(rec.op);
    out[29] = rec.cpu;
    out[30] = rec.size;
    out[31] = rec.flags;
}

TraceRecord
decodeRecord(const std::uint8_t in[kRecordSize])
{
    TraceRecord rec;
    rec.tick = getLe(in + 0, 8);
    rec.addr = getLe(in + 8, 8);
    rec.value = getLe(in + 16, 8);
    rec.pid = std::uint32_t(getLe(in + 24, 4));
    rec.op = TraceOp(in[28]);
    rec.cpu = in[29];
    rec.size = in[30];
    rec.flags = in[31];
    if (std::uint8_t(rec.op) > std::uint8_t(TraceOp::Membar))
        csb_fatal("CSBT record has unknown op ", unsigned(in[28]));
    return rec;
}

} // namespace

const char *
traceOpName(TraceOp op)
{
    switch (op) {
      case TraceOp::CachedLoad: return "cached-load";
      case TraceOp::CachedStore: return "cached-store";
      case TraceOp::CachedSwapStart: return "cached-swap";
      case TraceOp::SwapMemWrite: return "swap-mem-write";
      case TraceOp::UncachedLoad: return "uncached-load";
      case TraceOp::UncachedStore: return "uncached-store";
      case TraceOp::CsbStore: return "csb-store";
      case TraceOp::CsbFlush: return "csb-flush";
      case TraceOp::Membar: return "membar";
    }
    return "unknown";
}

void
TraceRecorder::writeTo(std::ostream &os) const
{
    std::uint8_t header[kHeaderSize] = {};
    header[0] = kMagic[0];
    header[1] = kMagic[1];
    header[2] = kMagic[2];
    header[3] = kMagic[3];
    putLe(header + 4, kVersion, 4);
    putLe(header + 8, numCpus_, 4);
    putLe(header + 12, lineBytes_, 4);
    putLe(header + 16, kRecordSize, 4);
    putLe(header + 20, records_.size(), 8);
    // Bytes 28..39 are reserved, written as zero (v1 readers ignore).
    os.write(reinterpret_cast<const char *>(header), kHeaderSize);

    std::uint8_t buf[kRecordSize];
    for (const TraceRecord &rec : records_) {
        encodeRecord(rec, buf);
        os.write(reinterpret_cast<const char *>(buf), kRecordSize);
    }
    if (!os)
        csb_fatal("error writing CSBT stream");
}

void
TraceRecorder::writeFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os.is_open())
        csb_fatal("cannot open trace file '", path, "' for writing");
    writeTo(os);
}

MemTrace
MemTrace::readFrom(std::istream &is)
{
    std::uint8_t header[kHeaderSize];
    is.read(reinterpret_cast<char *>(header), kHeaderSize);
    if (std::size_t(is.gcount()) != kHeaderSize)
        csb_fatal("CSBT stream truncated: header is ", is.gcount(),
                  " bytes, need ", kHeaderSize);
    if (header[0] != kMagic[0] || header[1] != kMagic[1] ||
        header[2] != kMagic[2] || header[3] != kMagic[3]) {
        csb_fatal("not a CSBT trace (bad magic)");
    }
    const auto version = std::uint32_t(getLe(header + 4, 4));
    if (version != kVersion)
        csb_fatal("unsupported CSBT version ", version, " (reader "
                  "implements version ", kVersion, ")");
    const auto record_size = std::uint32_t(getLe(header + 16, 4));
    if (record_size != kRecordSize)
        csb_fatal("CSBT header declares ", record_size,
                  "-byte records, version ", kVersion, " defines ",
                  kRecordSize);

    MemTrace trace;
    trace.numCpus_ = std::uint32_t(getLe(header + 8, 4));
    trace.lineBytes_ = std::uint32_t(getLe(header + 12, 4));
    const std::uint64_t count = getLe(header + 20, 8);

    trace.records_.reserve(count);
    std::uint8_t buf[kRecordSize];
    Tick last_tick = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        is.read(reinterpret_cast<char *>(buf), kRecordSize);
        if (std::size_t(is.gcount()) != kRecordSize)
            csb_fatal("CSBT stream truncated: header declares ", count,
                      " records, record ", i, " is incomplete");
        TraceRecord rec = decodeRecord(buf);
        if (rec.tick < last_tick)
            csb_fatal("CSBT stream corrupt: record ", i, " at tick ",
                      rec.tick, " after tick ", last_tick);
        last_tick = rec.tick;
        trace.records_.push_back(rec);
    }
    // Trailing garbage means the file was not produced by a compliant
    // writer; reject rather than silently ignore.
    if (is.peek() != std::istream::traits_type::eof())
        csb_fatal("CSBT stream has trailing bytes after the ", count,
                  " declared records");
    return trace;
}

MemTrace
MemTrace::loadFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.is_open())
        csb_fatal("cannot open trace file '", path, "'");
    return readFrom(is);
}

MemTrace
MemTrace::fromRecorder(const TraceRecorder &rec)
{
    MemTrace trace;
    trace.numCpus_ = rec.numCpus();
    trace.lineBytes_ = rec.lineBytes();
    trace.records_ = rec.records();
    return trace;
}

std::vector<TraceRecord>
MemTrace::recordsForCpu(std::uint8_t cpu) const
{
    std::vector<TraceRecord> out;
    for (const TraceRecord &rec : records_) {
        if (rec.cpu == cpu)
            out.push_back(rec);
    }
    return out;
}

void
MemTrace::dumpText(std::ostream &os) const
{
    os << "# CSBT v" << kVersion << " cpus=" << numCpus_
       << " line_bytes=" << lineBytes_
       << " records=" << records_.size() << "\n";
    os << "# tick op cpu pid addr size value flags\n";
    for (const TraceRecord &rec : records_) {
        os << rec.tick << ' ' << traceOpName(rec.op) << ' '
           << unsigned(rec.cpu) << ' ' << rec.pid << " 0x" << std::hex
           << rec.addr << std::dec << ' ' << unsigned(rec.size)
           << " 0x" << std::hex << rec.value << std::dec;
        os << (rec.eventPhase() ? " ev" : " clk");
        if (rec.swapPart())
            os << " swap";
        if (rec.flags & TraceFlagInterpreter)
            os << " interp";
        os << "\n";
    }
}

} // namespace csb::sim
