/**
 * @file
 * CSBC v1 container serialization (see docs/CHECKPOINT.md for the
 * normative layout).  All integers are little-endian, encoded
 * byte-by-byte so the format is host-endian independent.
 */

#include "checkpoint.hh"

#include <fstream>
#include <ostream>

#include "logging.hh"

namespace csb::sim {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'B', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 24;

void
putLe(std::vector<std::uint8_t> &out, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

std::uint64_t
getLeBuf(const std::uint8_t *in, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= std::uint64_t(in[i]) << (8 * i);
    return v;
}

/** Read exactly @p n bytes or die describing what was expected. */
void
readExact(std::istream &is, std::uint8_t *buf, std::size_t n,
          const char *what)
{
    is.read(reinterpret_cast<char *>(buf), std::streamsize(n));
    if (std::size_t(is.gcount()) != n)
        csb_fatal("CSBC stream truncated while reading ", what,
                  " (wanted ", n, " bytes, got ", is.gcount(), ")");
}

} // namespace

void
CheckpointWriter::beginSection(const std::string &name)
{
    sections_.push_back(Section{name, {}});
}

void
CheckpointWriter::put(std::uint64_t v, unsigned bytes)
{
    csb_assert(!sections_.empty(),
               "CheckpointWriter::put before beginSection");
    putLe(sections_.back().payload, v, bytes);
}

void
CheckpointWriter::putBytes(const void *data, std::uint64_t size)
{
    put(size, 8);
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    auto &payload = sections_.back().payload;
    payload.insert(payload.end(), bytes, bytes + size);
}

void
CheckpointWriter::writeTo(std::ostream &os) const
{
    std::vector<std::uint8_t> header;
    header.reserve(kHeaderSize);
    for (char c : kMagic)
        header.push_back(std::uint8_t(c));
    putLe(header, kVersion, 4);
    putLe(header, sections_.size(), 8);
    putLe(header, 0, 8); // reserved
    os.write(reinterpret_cast<const char *>(header.data()),
             std::streamsize(header.size()));

    for (const Section &section : sections_) {
        std::vector<std::uint8_t> head;
        putLe(head, section.name.size(), 4);
        os.write(reinterpret_cast<const char *>(head.data()),
                 std::streamsize(head.size()));
        os.write(section.name.data(),
                 std::streamsize(section.name.size()));
        std::vector<std::uint8_t> len;
        putLe(len, section.payload.size(), 8);
        os.write(reinterpret_cast<const char *>(len.data()),
                 std::streamsize(len.size()));
        os.write(reinterpret_cast<const char *>(section.payload.data()),
                 std::streamsize(section.payload.size()));
    }
    if (!os)
        csb_fatal("error writing CSBC stream");
}

void
CheckpointWriter::writeFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os.is_open())
        csb_fatal("cannot open checkpoint file '", path,
                  "' for writing");
    writeTo(os);
}

CheckpointReader
CheckpointReader::readFrom(std::istream &is)
{
    std::uint8_t header[kHeaderSize];
    readExact(is, header, kHeaderSize, "header");
    if (header[0] != std::uint8_t(kMagic[0]) ||
        header[1] != std::uint8_t(kMagic[1]) ||
        header[2] != std::uint8_t(kMagic[2]) ||
        header[3] != std::uint8_t(kMagic[3])) {
        csb_fatal("not a CSBC checkpoint (bad magic)");
    }
    const auto version = std::uint32_t(getLeBuf(header + 4, 4));
    if (version != kVersion)
        csb_fatal("unsupported CSBC version ", version, " (reader "
                  "implements version ", kVersion, ")");
    const std::uint64_t count = getLeBuf(header + 8, 8);

    CheckpointReader reader;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint8_t len4[4];
        readExact(is, len4, 4, "section name length");
        const auto name_len = std::uint32_t(getLeBuf(len4, 4));
        std::string name(name_len, '\0');
        if (name_len > 0) {
            readExact(is, reinterpret_cast<std::uint8_t *>(name.data()),
                      name_len, "section name");
        }
        std::uint8_t len8[8];
        readExact(is, len8, 8, "section payload length");
        const std::uint64_t payload_len = getLeBuf(len8, 8);
        Section section{std::move(name), {}};
        section.payload.resize(payload_len);
        if (payload_len > 0) {
            readExact(is, section.payload.data(), payload_len,
                      section.name.c_str());
        }
        reader.sections_.push_back(std::move(section));
    }
    if (is.peek() != std::istream::traits_type::eof())
        csb_fatal("CSBC stream has trailing bytes after the ", count,
                  " declared sections");
    return reader;
}

CheckpointReader
CheckpointReader::loadFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.is_open())
        csb_fatal("cannot open checkpoint file '", path, "'");
    return readFrom(is);
}

bool
CheckpointReader::hasSection(const std::string &name) const
{
    for (const Section &section : sections_) {
        if (section.name == name)
            return true;
    }
    return false;
}

void
CheckpointReader::openSection(const std::string &name)
{
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        if (sections_[i].name == name) {
            current_ = i;
            cursor_ = 0;
            return;
        }
    }
    csb_fatal("CSBC checkpoint lacks section '", name, "'");
}

void
CheckpointReader::closeSection()
{
    csb_assert(current_ != SIZE_MAX, "closeSection with none open");
    const Section &section = sections_[current_];
    if (cursor_ != section.payload.size())
        csb_fatal("CSBC section '", section.name, "' only consumed ",
                  cursor_, " of ", section.payload.size(), " bytes");
    current_ = SIZE_MAX;
    cursor_ = 0;
}

std::uint64_t
CheckpointReader::get(unsigned bytes)
{
    csb_assert(current_ != SIZE_MAX, "get before openSection");
    const Section &section = sections_[current_];
    if (cursor_ + bytes > section.payload.size())
        csb_fatal("CSBC section '", section.name, "' truncated: read "
                  "of ", bytes, " bytes at offset ", cursor_,
                  " exceeds payload of ", section.payload.size());
    const std::uint64_t v =
        getLeBuf(section.payload.data() + cursor_, bytes);
    cursor_ += bytes;
    return v;
}

std::vector<std::uint8_t>
CheckpointReader::getBytes()
{
    const std::uint64_t size = get(8);
    csb_assert(current_ != SIZE_MAX, "getBytes before openSection");
    const Section &section = sections_[current_];
    if (cursor_ + size > section.payload.size())
        csb_fatal("CSBC section '", section.name, "' truncated: byte "
                  "string of ", size, " bytes at offset ", cursor_,
                  " exceeds payload of ", section.payload.size());
    std::vector<std::uint8_t> out(
        section.payload.begin() + std::ptrdiff_t(cursor_),
        section.payload.begin() + std::ptrdiff_t(cursor_ + size));
    cursor_ += size;
    return out;
}

std::string
CheckpointReader::getStr()
{
    std::vector<std::uint8_t> bytes = getBytes();
    return std::string(bytes.begin(), bytes.end());
}

} // namespace csb::sim
