/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Statistics register themselves with a StatGroup; groups form a tree
 * rooted at the owning component.  dump() renders "name value # desc"
 * lines, and every stat can be read programmatically by the benchmark
 * harness.
 */

#ifndef CSB_SIM_STATS_HH
#define CSB_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "logging.hh"

namespace csb::sim {
class JsonWriter;
class CheckpointWriter;
class CheckpointReader;
} // namespace csb::sim

namespace csb::sim::stats {

class StatGroup;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render the stat as one or more output lines. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /**
     * Render the stat as a JSON object ("type"/"desc"/values).  The
     * caller has already emitted the enclosing key.
     */
    virtual void dumpJson(JsonWriter &jw) const = 0;

    /** Reset to the initial state. */
    virtual void reset() = 0;

    /**
     * Append this stat's mutable state to the open checkpoint section
     * (docs/CHECKPOINT.md).  Formula writes nothing -- it is derived.
     * The tree walk (StatGroup::checkpointSaveStats) prefixes each
     * stat with its name and checkpointTag(), so restore verifies it
     * is consuming the stat it expects before touching any state.
     */
    virtual void checkpointSave(CheckpointWriter &cw) const = 0;

    /** Restore the state written by checkpointSave(). */
    virtual void checkpointRestore(CheckpointReader &cr) = 0;

    /** One-byte CSBC type tag identifying the concrete stat type. */
    virtual std::uint8_t checkpointTag() const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic or signed scalar counter. */
class Scalar : public StatBase
{
  public:
    Scalar(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(JsonWriter &jw) const override;
    void reset() override { value_ = 0; }

    void checkpointSave(CheckpointWriter &cw) const override;
    void checkpointRestore(CheckpointReader &cr) override;
    std::uint8_t checkpointTag() const override { return 1; }

  private:
    double value_ = 0;
};

/** Running average (sum / count). */
class Average : public StatBase
{
  public:
    Average(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double value() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(JsonWriter &jw) const override;

    void
    reset() override
    {
        sum_ = 0;
        count_ = 0;
    }

    void checkpointSave(CheckpointWriter &cw) const override;
    void checkpointRestore(CheckpointReader &cr) override;
    std::uint8_t checkpointTag() const override { return 2; }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram with underflow/overflow. */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double min, double max, double bucket_size);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t totalSamples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
    double minSampled() const { return minSampled_; }
    double maxSampled() const { return maxSampled_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Value at or below which a fraction @p p of samples fall,
     * resolved to bucket granularity (upper bucket edge).
     *
     * @param p fraction in (0, 1]; e.g. 0.5 for the median.
     * @return 0 when no samples have been recorded.
     */
    double percentile(double p) const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(JsonWriter &jw) const override;
    void reset() override;

    void checkpointSave(CheckpointWriter &cw) const override;
    void checkpointRestore(CheckpointReader &cr) override;
    std::uint8_t checkpointTag() const override { return 3; }

  private:
    double min_;
    double max_;
    double bucketSize_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0;
    double minSampled_ = 0;
    double maxSampled_ = 0;
};

/** Derived value computed on demand from other stats. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(parent, std::move(name), std::move(desc)),
          fn_(std::move(fn))
    {}

    double value() const { return fn_(); }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(JsonWriter &jw) const override;
    void reset() override {}

    void checkpointSave(CheckpointWriter &) const override {}
    void checkpointRestore(CheckpointReader &) override {}
    std::uint8_t checkpointTag() const override { return 4; }

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics and child groups.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &statName() const { return name_; }

    /** Fully qualified dotted name. */
    std::string fullStatName() const;

    /** Dump this group's stats and all children, depth first. */
    void dumpStats(std::ostream &os) const;

    /**
     * Serialize this group as a JSON object: one member per stat
     * (rendered by StatBase::dumpJson) and one per child group,
     * nested recursively.  The caller has already emitted the
     * enclosing key (or this is the document root).
     */
    void dumpJson(JsonWriter &jw) const;

    /**
     * Convenience wrapper: write a complete JSON document for this
     * group's subtree to @p os.
     *
     * @param os     sink for the document.
     * @param indent spaces per nesting level; 0 emits compact JSON.
     */
    void dumpStatsJson(std::ostream &os, int indent = 2) const;

    /** Reset all stats in this group and its children. */
    void resetStats();

    /** Look up a stat in this group by local name; null when absent. */
    const StatBase *findStat(const std::string &name) const;

    /**
     * Serialize every stat of this subtree (depth first, registration
     * order) into the open checkpoint section: per stat, its name, a
     * type tag and its state; per child group, its name.  The restore
     * walk demands an identically shaped tree -- it is only valid on
     * a freshly built, identically configured component.
     */
    void checkpointSaveStats(CheckpointWriter &cw) const;

    /** Restore the subtree written by checkpointSaveStats(). */
    void checkpointRestoreStats(CheckpointReader &cr);

  private:
    friend class StatBase;

    std::string name_;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace csb::sim::stats

#endif // CSB_SIM_STATS_HH
