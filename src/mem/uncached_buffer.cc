#include "uncached_buffer.hh"

#include <cstring>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace csb::mem {

void
UncachedBufferParams::validate() const
{
    if (entries == 0)
        csb_fatal("uncached buffer needs at least one entry");
    if (combineBytes != 0 &&
        (!isPowerOf2(combineBytes) || combineBytes < 8 ||
         combineBytes > maxBlockBytes)) {
        csb_fatal("combine block must be a power of two in [8,",
                  maxBlockBytes, "], got ", combineBytes);
    }
}

UncachedBuffer::UncachedBuffer(sim::Simulator &simulator,
                               bus::SystemBus &bus,
                               const UncachedBufferParams &params,
                               std::string name,
                               sim::stats::StatGroup *stat_parent)
    : sim::Clocked(name, sim::ClockDomain(1), /*eval_order=*/-5),
      sim::stats::StatGroup(name, stat_parent),
      storesPushed(this, "storesPushed", "uncached stores accepted"),
      loadsPushed(this, "loadsPushed", "uncached loads accepted"),
      storesCoalesced(this, "storesCoalesced",
                      "stores merged into an existing entry"),
      entriesCreated(this, "entriesCreated", "buffer entries allocated"),
      txnsIssued(this, "txnsIssued", "bus transactions issued"),
      busNacks(this, "busNacks", "transactions NACKed on the bus"),
      busRetries(this, "busRetries",
                 "NACKed transactions reissued after backoff"),
      entryOccupancy(this, "entryOccupancy",
                     "stores combined per entry", 1, 16, 1),
      sim_(simulator), bus_(bus), params_(params)
{
    params_.validate();
    masterId_ = bus_.registerMaster(name + ".port");
    simulator.registerClocked(this);
}

unsigned
UncachedBuffer::blockBytes() const
{
    return params_.combineBytes != 0 ? params_.combineBytes : 8;
}

unsigned
UncachedBuffer::maxTxnBytes() const
{
    return std::min<unsigned>(blockBytes(), bus_.params().maxBurstBytes);
}

bool
UncachedBuffer::canCoalesceInto(const Entry &tail, Addr addr,
                                unsigned size) const
{
    if (params_.combineBytes == 0)
        return false;
    if (tail.kind != Kind::Store || tail.locked)
        return false;
    if (roundDown(addr, blockBytes()) != tail.addr)
        return false;
    if (params_.policy == CombinePolicy::SequentialOnly) {
        // R10000-style pattern detection: only the very next address
        // extends the entry.
        (void)size;
        return addr == tail.lastStoreEnd;
    }
    return true;
}

bool
UncachedBuffer::canAcceptStore(Addr addr, unsigned size) const
{
    if (!entries_.empty() &&
        canCoalesceInto(entries_.back(), addr, size)) {
        return true; // coalesces; no new entry needed
    }
    return entries_.size() < params_.entries;
}

bool
UncachedBuffer::canAcceptLoad() const
{
    return entries_.size() < params_.entries;
}

void
UncachedBuffer::pushStore(Addr addr, unsigned size, const void *data)
{
    ungate();
    csb_assert(size > 0 && size <= 8 && isPowerOf2(size),
               "bad uncached store size ", size);
    csb_assert(addr % size == 0, "misaligned uncached store");
    csb_assert(canAcceptStore(addr, size), "pushStore without capacity");

    Addr block = roundDown(addr, blockBytes());
    unsigned offset = static_cast<unsigned>(addr - block);

    if (!entries_.empty() &&
        canCoalesceInto(entries_.back(), addr, size)) {
        Entry &tail = entries_.back();
        std::memcpy(tail.data.data() + offset, data, size);
        for (unsigned i = 0; i < size; ++i)
            tail.valid.set(offset + i);
        ++tail.storeCount;
        tail.lastStoreEnd = addr + size;
        tail.pieces.emplace_back(offset, size);
        ++storesPushed;
        ++storesCoalesced;
        sim::trace::log("ubuf", "coalesce 0x", std::hex, addr,
                        std::dec, "/", size, " into block 0x",
                        std::hex, block, std::dec, " (",
                        tail.storeCount, " stores)");
        return;
    }

    Entry entry;
    entry.kind = Kind::Store;
    entry.addr = block;
    std::memcpy(entry.data.data() + offset, data, size);
    for (unsigned i = 0; i < size; ++i)
        entry.valid.set(offset + i);
    entry.storeCount = 1;
    entry.lastStoreEnd = addr + size;
    entry.pieces.emplace_back(offset, size);
    entries_.push_back(std::move(entry));
    ++storesPushed;
    ++entriesCreated;
    sim::trace::log("ubuf", "new entry 0x", std::hex, block, std::dec,
                    " depth=", entries_.size());
}

void
UncachedBuffer::pushLoad(Addr addr, unsigned size, UncachedLoadCallback done)
{
    ungate();
    csb_assert(canAcceptLoad(), "pushLoad without capacity");
    csb_assert(size > 0 && isPowerOf2(size) && addr % size == 0,
               "bad uncached load shape");
    Entry entry;
    entry.kind = Kind::Load;
    entry.addr = addr;
    entry.size = size;
    entry.loadDone = std::move(done);
    entries_.push_back(std::move(entry));
    ++loadsPushed;
    ++entriesCreated;
}

bool
UncachedBuffer::empty() const
{
    return entries_.empty() && retries_.empty() &&
           inflightStores_ == 0 && inflightLoads_ == 0;
}

void
UncachedBuffer::tick()
{
    if (empty()) {
        // Drained and nothing in flight: sleep until the next
        // pushStore()/pushLoad() ungates us.
        gate();
        return;
    }

    // With bus faults possible, the status of an in-flight access must
    // come back before the next one may issue: a NACK discovered at
    // completion would otherwise replay behind a younger neighbour,
    // reordering this port's strongly-ordered stream.
    if ((inflightStores_ != 0 || inflightLoads_ != 0) &&
        bus_.ordersMustSerialize()) {
        return;
    }

    // NACKed transactions reissue strictly before queued entries so
    // the port's access order is preserved.
    if (!retries_.empty()) {
        if (retryPresentPending_ || !bus_.masterIdle(masterId_))
            return;
        PendingRetry &head = retries_.front();
        if (sim_.curTick() < head.earliest)
            return;
        if (!bus_.wouldAcceptAtNextEdge(masterId_,
                                        /*strongly_ordered=*/true,
                                        head.isWrite)) {
            return;
        }
        PendingRetry redo = std::move(head);
        retries_.pop_front();
        issueRetry(std::move(redo));
        return;
    }

    if (entries_.empty())
        return;
    Entry &head = entries_.front();
    if (head.presentPending || !bus_.masterIdle(masterId_))
        return;
    // Keep the head entry open (combining) until the bus can actually
    // take its transaction at the next edge.
    if (!bus_.wouldAcceptAtNextEdge(masterId_, /*strongly_ordered=*/true,
                                    head.kind == Kind::Store)) {
        return;
    }
    if (head.kind == Kind::Store) {
        presentHeadStore();
    } else {
        presentHeadLoad();
    }
}

void
UncachedBuffer::presentHeadStore()
{
    Entry &head = entries_.front();
    if (!head.locked) {
        head.locked = true;
        head.chunks.clear();
        bool full_block =
            head.valid.count() == blockBytes() &&
            blockBytes() <= maxTxnBytes();
        if (params_.policy == CombinePolicy::SequentialOnly &&
            !full_block) {
            // R10000 semantics: a burst only for a fully combined
            // block; otherwise one single-beat per original store.
            for (const auto &[offset, size] : head.pieces)
                head.chunks.push_back(Chunk{head.addr + offset, size});
        } else {
            for (const Chunk &chunk :
                 decomposeAligned(head.addr, head.valid, blockBytes(),
                                  maxTxnBytes())) {
                head.chunks.push_back(chunk);
            }
        }
        csb_assert(!head.chunks.empty(), "locked an empty store entry");
        entryOccupancy.sample(head.storeCount);
    }

    Chunk chunk = head.chunks.front();
    std::vector<std::uint8_t> payload(chunk.size);
    std::memcpy(payload.data(),
                head.data.data() + (chunk.addr - head.addr), chunk.size);
    std::vector<std::uint8_t> keep = payload;

    bool accepted = bus_.requestWrite(
        masterId_, chunk.addr, std::move(payload), /*strongly_ordered=*/true,
        /*on_complete=*/
        [this, addr = chunk.addr,
         keep = std::move(keep)](Tick when,
                                 bus::BusStatus status) mutable {
            handleWriteStatus(addr, std::move(keep), /*attempt=*/0, when,
                              status);
        },
        /*on_start=*/[this](Tick) {
            Entry &started = entries_.front();
            started.presentPending = false;
            if (started.chunks.empty())
                entries_.pop_front();
        });
    csb_assert(accepted, "bus refused request despite idle master");

    head.chunks.pop_front();
    head.presentPending = true;
    ++inflightStores_;
    ++txnsIssued;
}

void
UncachedBuffer::presentHeadLoad()
{
    Entry &head = entries_.front();
    bool accepted = bus_.requestRead(
        masterId_, head.addr, head.size, /*strongly_ordered=*/true,
        /*on_complete=*/
        [this, addr = head.addr, size = head.size,
         done = head.loadDone](Tick when, bus::BusStatus status,
                               const std::vector<std::uint8_t> &data) {
            handleReadStatus(addr, size, done, /*attempt=*/0, when,
                             status, data);
        },
        /*on_start=*/[this](Tick) {
            entries_.pop_front();
        });
    csb_assert(accepted, "bus refused request despite idle master");
    head.presentPending = true;
    ++inflightLoads_;
    ++txnsIssued;
}

void
UncachedBuffer::issueRetry(PendingRetry redo)
{
    if (redo.isWrite) {
        std::vector<std::uint8_t> keep = redo.data;
        bool accepted = bus_.requestWrite(
            masterId_, redo.addr, std::move(redo.data),
            /*strongly_ordered=*/true,
            /*on_complete=*/
            [this, addr = redo.addr, keep = std::move(keep),
             attempt = redo.attempt](Tick when,
                                     bus::BusStatus status) mutable {
                handleWriteStatus(addr, std::move(keep), attempt, when,
                                  status);
            },
            /*on_start=*/[this](Tick) { retryPresentPending_ = false; });
        csb_assert(accepted, "bus refused retry despite idle master");
        ++inflightStores_;
    } else {
        bool accepted = bus_.requestRead(
            masterId_, redo.addr, redo.size, /*strongly_ordered=*/true,
            /*on_complete=*/
            [this, addr = redo.addr, size = redo.size,
             done = std::move(redo.loadDone),
             attempt = redo.attempt](Tick when, bus::BusStatus status,
                                     const std::vector<std::uint8_t> &data) {
                handleReadStatus(addr, size, done, attempt, when, status,
                                 data);
            },
            /*on_start=*/[this](Tick) { retryPresentPending_ = false; });
        csb_assert(accepted, "bus refused retry despite idle master");
        ++inflightLoads_;
    }
    retryPresentPending_ = true;
}

void
UncachedBuffer::handleWriteStatus(Addr addr,
                                  std::vector<std::uint8_t> keep,
                                  unsigned attempt, Tick when,
                                  bus::BusStatus status)
{
    csb_assert(inflightStores_ > 0, "store completion underflow");
    --inflightStores_;
    if (status == bus::BusStatus::Ok)
        return;
    if (status == bus::BusStatus::Error) {
        csb_fatal(sim::Clocked::name(),
                  ": bus error on uncached store at 0x", std::hex, addr);
    }
    busNacks += 1;
    if (attempt + 1 >= params_.retry.maxAttempts) {
        csb_fatal(sim::Clocked::name(), ": store retries exhausted (",
                  params_.retry.maxAttempts, ") at 0x", std::hex, addr);
    }
    busRetries += 1;
    PendingRetry redo;
    redo.isWrite = true;
    redo.addr = addr;
    redo.size = static_cast<unsigned>(keep.size());
    redo.data = std::move(keep);
    redo.attempt = attempt + 1;
    redo.earliest = when + params_.retry.backoffFor(attempt + 1);
    retries_.push_back(std::move(redo));
}

void
UncachedBuffer::handleReadStatus(Addr addr, unsigned size,
                                 UncachedLoadCallback done,
                                 unsigned attempt, Tick when,
                                 bus::BusStatus status,
                                 const std::vector<std::uint8_t> &data)
{
    csb_assert(inflightLoads_ > 0, "load completion underflow");
    --inflightLoads_;
    if (status == bus::BusStatus::Ok) {
        if (done)
            done(when, data);
        return;
    }
    if (status == bus::BusStatus::Error) {
        csb_fatal(sim::Clocked::name(),
                  ": bus error on uncached load at 0x", std::hex, addr);
    }
    busNacks += 1;
    if (attempt + 1 >= params_.retry.maxAttempts) {
        csb_fatal(sim::Clocked::name(), ": load retries exhausted (",
                  params_.retry.maxAttempts, ") at 0x", std::hex, addr);
    }
    busRetries += 1;
    PendingRetry redo;
    redo.isWrite = false;
    redo.addr = addr;
    redo.size = size;
    redo.loadDone = std::move(done);
    redo.attempt = attempt + 1;
    redo.earliest = when + params_.retry.backoffFor(attempt + 1);
    retries_.push_back(std::move(redo));
}

void
UncachedBuffer::debugDump(std::ostream &os) const
{
    os << "entries=" << entries_.size() << " retries=" << retries_.size()
       << " inflightStores=" << inflightStores_
       << " inflightLoads=" << inflightLoads_;
    if (!retries_.empty()) {
        const PendingRetry &head = retries_.front();
        os << "\n  retry head: " << (head.isWrite ? "store" : "load")
           << " addr=0x" << std::hex << head.addr << std::dec
           << " attempt=" << head.attempt << '/'
           << params_.retry.maxAttempts << " earliest=" << head.earliest;
    }
}

} // namespace csb::mem
