/**
 * @file
 * Write-back caches and the two-level hierarchy used by the core.
 *
 * The paper's experiments need caches for exactly one reason: the
 * lock variable of the locking microbenchmark either hits in the L1
 * or misses all the way to memory (~100 CPU cycles).  The model is a
 * tag-state-plus-latency cache: tags, LRU and dirty bits are tracked
 * precisely, while a miss costs the level's fill latency.  Misses may
 * optionally be routed over the system bus as line reads so that they
 * compete with uncached traffic.
 */

#ifndef CSB_MEM_CACHE_HH
#define CSB_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace csb::sim {
class CheckpointWriter;
class CheckpointReader;
} // namespace csb::sim

namespace csb::mem {

/** Geometry and timing of one cache level. */
struct CacheParams
{
    unsigned sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 64;
    /** Latency of a hit in this level, in CPU ticks. */
    Tick hitLatency = 1;

    void validate() const;
};

/**
 * One cache level: tags + replacement state, no data (the functional
 * image lives in PhysicalMemory).
 */
class Cache : public sim::stats::StatGroup
{
  public:
    Cache(const CacheParams &params, std::string name,
          sim::stats::StatGroup *stat_parent = nullptr);

    /** Result of a lookup+fill. */
    struct AccessResult
    {
        bool hit = false;
        /** Valid when a dirty victim was evicted by the fill. */
        bool writeback = false;
        Addr writebackAddr = 0;
    };

    /**
     * Look up @p addr; on a miss, allocate (filling over LRU).
     * @param is_write marks the line dirty
     */
    AccessResult access(Addr addr, bool is_write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Invalidate the line containing @p addr (if present). */
    void invalidate(Addr addr);

    /** Invalidate everything. */
    void flushAll();

    const CacheParams &params() const { return params_; }

    /**
     * Serialize tag/valid/dirty/LRU state (not stats -- those travel
     * with the stats tree).  Restore verifies identical geometry.
     */
    void checkpointSave(sim::CheckpointWriter &cw) const;
    void checkpointRestore(sim::CheckpointReader &cr);

    sim::stats::Scalar hits;
    sim::stats::Scalar misses;
    sim::stats::Scalar writebacks;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    unsigned numSets_ = 0;
    CacheParams params_;
    std::vector<Line> lines_; // sets_ x assoc, row-major
    std::uint64_t useClock_ = 0;

    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    unsigned setIndex(Addr addr) const;
};

/**
 * L1 + L2 hierarchy with asynchronous completion.
 *
 * Miss handling beyond the L2 goes through a pluggable line-fetch
 * function so the owning System can route it over the system bus; by
 * default a fixed memory latency is charged.
 */
class CacheHierarchy : public sim::stats::StatGroup
{
  public:
    /** fetch(line_addr, done): read a line; call done when complete. */
    using LineFetch =
        std::function<void(Addr line_addr, std::function<void(Tick)> done)>;
    /** writeback(line_addr): fire-and-forget dirty eviction. */
    using LineWriteback = std::function<void(Addr line_addr)>;

    CacheHierarchy(const CacheParams &l1, const CacheParams &l2,
                   Tick mem_latency, std::string name = "caches",
                   sim::stats::StatGroup *stat_parent = nullptr);

    /**
     * Access the hierarchy.
     * @param addr     byte address (access must not cross an L1 line)
     * @param is_write marks lines dirty on the way
     * @param now      current tick
     * @param done     invoked with the completion tick
     */
    void access(Addr addr, bool is_write, Tick now,
                const std::function<void(Tick)> &done);

    /**
     * Pure latency variant used by callers that schedule their own
     * events: @return total latency in ticks for this access.
     * Only usable when no bus-routed fetch is installed.
     */
    Tick accessLatency(Addr addr, bool is_write);

    /** Route L2 misses through @p fetch (e.g. over the system bus). */
    void setLineFetch(LineFetch fetch) { lineFetch_ = std::move(fetch); }

    /** Route dirty evictions through @p writeback. */
    void
    setLineWriteback(LineWriteback writeback)
    {
        lineWriteback_ = std::move(writeback);
    }

    /** Warm both levels so a subsequent access to @p addr hits in L1. */
    void touch(Addr addr);

    /** Evict @p addr from both levels (forces a miss). */
    void evict(Addr addr);

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Tick memLatency() const { return memLatency_; }

    /** Serialize both levels (see Cache::checkpointSave). */
    void checkpointSave(sim::CheckpointWriter &cw) const;
    void checkpointRestore(sim::CheckpointReader &cr);

  private:
    Cache l1_;
    Cache l2_;
    Tick memLatency_;
    LineFetch lineFetch_;
    LineWriteback lineWriteback_;
    /** Pending completions are scheduled via this hook (set by System). */
  public:
    /** Scheduler used for delayed completions; set by the System. */
    std::function<void(Tick when, std::function<void()>)> deferredCall;
};

} // namespace csb::mem

#endif // CSB_MEM_CACHE_HH
