/**
 * @file
 * Write-back caches and the two-level hierarchy used by the core.
 *
 * The paper's experiments need caches for exactly one reason: the
 * lock variable of the locking microbenchmark either hits in the L1
 * or misses all the way to memory (~100 CPU cycles).  The model is a
 * tag-state-plus-latency cache: tags, LRU and dirty bits are tracked
 * precisely, while a miss costs the level's fill latency.  Misses may
 * optionally be routed over the system bus as line reads so that they
 * compete with uncached traffic.
 *
 * Multi-core systems may attach a snooping CoherencePolicy (MESI by
 * default, docs/ARCHITECTURE.md).  Each line then carries a full
 * MESI state, encoded as the legacy valid/dirty pair plus a `shared`
 * overlay bit: Invalid = !valid, Modified = dirty, Shared = clean +
 * shared, Exclusive = clean + !shared.  Without a policy the shared
 * bit is never set and every code path below is bit-identical to the
 * pre-coherence caches -- that is what keeps single-core artifacts
 * byte-stable (DESIGN.md).
 */

#ifndef CSB_MEM_CACHE_HH
#define CSB_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bus/snoop.hh"
#include "mem/coherence.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace csb::sim {
class CheckpointWriter;
class CheckpointReader;
} // namespace csb::sim

namespace csb::mem {

/** Geometry and timing of one cache level. */
struct CacheParams
{
    unsigned sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 64;
    /** Latency of a hit in this level, in CPU ticks. */
    Tick hitLatency = 1;

    void validate() const;
};

/**
 * One cache level: tags + replacement state, no data (the functional
 * image lives in PhysicalMemory).
 */
class Cache : public sim::stats::StatGroup
{
  public:
    Cache(const CacheParams &params, std::string name,
          sim::stats::StatGroup *stat_parent = nullptr);

    /** Result of a lookup+fill. */
    struct AccessResult
    {
        bool hit = false;
        /** Valid when a dirty victim was evicted by the fill. */
        bool writeback = false;
        Addr writebackAddr = 0;
    };

    /**
     * Look up @p addr; on a miss, allocate (filling over LRU).
     * @param is_write marks the line dirty
     */
    AccessResult access(Addr addr, bool is_write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Invalidate the line containing @p addr (if present). */
    void invalidate(Addr addr);

    /** Invalidate everything. */
    void flushAll();

    /** Coherence state of the line holding @p addr (no LRU update). */
    LineState lineState(Addr addr) const;

    /**
     * Force the line holding @p addr into @p state (snoop/fill
     * transitions; no LRU update, no stats).  A miss is a no-op
     * unless @p state is Invalid, which is always a no-op on a miss.
     */
    void setLineState(Addr addr, LineState state);

    const CacheParams &params() const { return params_; }

    /**
     * Serialize tag/state/LRU per line (not stats -- those travel
     * with the stats tree).  Restore verifies identical geometry.
     */
    void checkpointSave(sim::CheckpointWriter &cw) const;
    void checkpointRestore(sim::CheckpointReader &cr);

    sim::stats::Scalar hits;
    sim::stats::Scalar misses;
    sim::stats::Scalar writebacks;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        /** Coherence overlay: another cache also holds this line. */
        bool shared = false;
        std::uint64_t lastUse = 0;

        LineState
        state() const
        {
            if (!valid)
                return LineState::Invalid;
            if (dirty)
                return LineState::Modified;
            return shared ? LineState::Shared : LineState::Exclusive;
        }

        void
        setState(LineState s)
        {
            valid = s != LineState::Invalid;
            dirty = s == LineState::Modified;
            shared = s == LineState::Shared;
        }
    };

    unsigned numSets_ = 0;
    CacheParams params_;
    std::vector<Line> lines_; // sets_ x assoc, row-major
    std::uint64_t useClock_ = 0;

    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    unsigned setIndex(Addr addr) const;
};

/**
 * L1 + L2 hierarchy with asynchronous completion.
 *
 * Miss handling beyond the L2 goes through a pluggable line-fetch
 * function so the owning System can route it over the system bus; by
 * default a fixed memory latency is charged.
 *
 * With a coherence policy attached (setCoherence) the hierarchy is
 * one snoopable coherence unit: probes from other masters transition
 * both levels, misses broadcast Read/ReadExclusive probes before
 * filling, and a write hit on a Shared line broadcasts an Upgrade.
 */
class CacheHierarchy : public sim::stats::StatGroup, public bus::Snooper
{
  public:
    /** fetch(line_addr, done): read a line; call done when complete. */
    using LineFetch =
        std::function<void(Addr line_addr, std::function<void(Tick)> done)>;
    /** writeback(line_addr): fire-and-forget dirty eviction. */
    using LineWriteback = std::function<void(Addr line_addr)>;
    /** Broadcast a snoop probe to every other cached master. */
    using SnoopBroadcast =
        std::function<bus::SnoopSummary(Addr line_addr, bus::SnoopKind)>;

    CacheHierarchy(const CacheParams &l1, const CacheParams &l2,
                   Tick mem_latency, std::string name = "caches",
                   sim::stats::StatGroup *stat_parent = nullptr);

    /**
     * Access the hierarchy.
     * @param addr     byte address (access must not cross an L1 line)
     * @param is_write marks lines dirty on the way
     * @param now      current tick
     * @param done     invoked with the completion tick
     */
    void access(Addr addr, bool is_write, Tick now,
                const std::function<void(Tick)> &done);

    /**
     * Pure latency variant used by callers that schedule their own
     * events: @return total latency in ticks for this access.
     * Only usable when no bus-routed fetch is installed.
     */
    Tick accessLatency(Addr addr, bool is_write);

    /** Route L2 misses through @p fetch (e.g. over the system bus). */
    void setLineFetch(LineFetch fetch) { lineFetch_ = std::move(fetch); }

    /** Route dirty evictions through @p writeback. */
    void
    setLineWriteback(LineWriteback writeback)
    {
        lineWriteback_ = std::move(writeback);
    }

    /**
     * Attach a snooping coherence policy.  @p broadcast is invoked
     * synchronously on misses and upgrades and must probe every other
     * coherent hierarchy (the SystemBus provides it).  @p policy is
     * borrowed and must outlive the hierarchy.
     */
    void setCoherence(const CoherencePolicy *policy,
                      const CoherenceParams &params,
                      SnoopBroadcast broadcast);

    bool coherent() const { return cohPolicy_ != nullptr; }

    /** Strongest coherence state either level holds for @p addr. */
    LineState lineState(Addr addr) const;

    /** bus::Snooper: apply @p kind to both levels, report what
     *  happened.  A Modified copy demand-writes-back via the
     *  line-writeback hook before downgrading. */
    bus::SnoopReply snoopProbe(Addr line_addr, bus::SnoopKind kind) override;

    /** Warm both levels so a subsequent access to @p addr hits in L1.
     *  Test/bench helper; bypasses the snoop path. */
    void touch(Addr addr);

    /** Evict @p addr from both levels (forces a miss). */
    void evict(Addr addr);

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Tick memLatency() const { return memLatency_; }

    /** Serialize both levels (see Cache::checkpointSave). */
    void checkpointSave(sim::CheckpointWriter &cw) const;
    void checkpointRestore(sim::CheckpointReader &cr);

    // Coherence statistics (zero and inert without a policy).
    /** Upgrade broadcasts issued (local write hit on a Shared line). */
    sim::stats::Scalar upgrades;
    /** Fills supplied cache-to-cache by another hierarchy. */
    sim::stats::Scalar cacheToCacheFills;
    /** Probes this hierarchy answered with a valid copy. */
    sim::stats::Scalar snoopHits;
    /** Local copies invalidated by remote probes. */
    sim::stats::Scalar snoopInvalidations;
    /** Dirty copies demand-written-back on remote probes. */
    sim::stats::Scalar snoopWritebacks;

  private:
    /** Outcome of the coherence pre-check of one access. */
    struct CohOutcome
    {
        /** Extra ticks (upgrade broadcast round-trip). */
        Tick extra = 0;
        /** The access is a full-hierarchy fill. */
        bool isFill = false;
        /** Another cache supplies the fill (intervention). */
        bool supplied = false;
        /** The fill lands Shared (another cache keeps a copy). */
        bool fillShared = false;
    };

    /** Broadcast probes / decide fill state before touching tags. */
    CohOutcome coherentPre(Addr addr, bool is_write);
    /** Overlay the Shared fill state after the tags were filled. */
    void applyFill(Addr addr, const CohOutcome &o);

    Cache l1_;
    Cache l2_;
    Tick memLatency_;
    LineFetch lineFetch_;
    LineWriteback lineWriteback_;
    const CoherencePolicy *cohPolicy_ = nullptr;
    CoherenceParams cohParams_;
    SnoopBroadcast snoopBroadcast_;
    /** Pending completions are scheduled via this hook (set by System). */
  public:
    /** Scheduler used for delayed completions; set by the System. */
    std::function<void(Tick when, std::function<void()>)> deferredCall;
};

} // namespace csb::mem

#endif // CSB_MEM_CACHE_HH
