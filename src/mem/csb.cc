#include "csb.hh"

#include <cstring>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "sim/trace_json.hh"

namespace csb::mem {

void
CsbParams::validate() const
{
    if (!isPowerOf2(lineBytes) || lineBytes < 16 ||
        lineBytes > maxBlockBytes) {
        csb_fatal("CSB line size must be a power of two in [16,",
                  maxBlockBytes, "], got ", lineBytes);
    }
    if (numLineBuffers < 1 || numLineBuffers > 4)
        csb_fatal("CSB supports 1..4 line buffers, got ", numLineBuffers);
    if (degradedFallback && repromoteAfter < 1)
        csb_fatal("CSB degraded fallback needs repromoteAfter >= 1");
}

ConditionalStoreBuffer::ConditionalStoreBuffer(
    sim::Simulator &simulator, bus::SystemBus &bus, const CsbParams &params,
    std::string name, sim::stats::StatGroup *stat_parent)
    : sim::Clocked(name, sim::ClockDomain(1), /*eval_order=*/-5),
      sim::stats::StatGroup(name, stat_parent),
      storesAccepted(this, "storesAccepted", "combining stores merged"),
      conflictsOnStore(this, "conflictsOnStore",
                       "stores that cleared a competing sequence"),
      flushesAttempted(this, "flushesAttempted",
                       "conditional flushes executed"),
      flushesSucceeded(this, "flushesSucceeded",
                       "flushes that issued an atomic burst"),
      flushesFailed(this, "flushesFailed", "flushes that detected conflict"),
      linesIssued(this, "linesIssued", "burst lines sent to the bus"),
      storeStallCycles(this, "storeStallCycles",
                       "cycles retire stalled on a busy line buffer"),
      busNacks(this, "busNacks", "flush writes NACKed on the bus"),
      busRetries(this, "busRetries",
                 "NACKed flush writes reissued after backoff"),
      degradedEntries(this, "degradedEntries",
                      "retry exhaustions escalated to degraded mode"),
      repromotions(this, "repromotions",
                   "re-promotions to burst mode after clean flushes"),
      degradedTicks(this, "degradedTicks",
                    "ticks spent in degraded (PIO fallback) mode"),
      fillAtFlush(this, "fillAtFlush",
                  "valid bytes in the line at a successful flush",
                  0, params.lineBytes, 8),
      sim_(simulator), bus_(bus), params_(params)
{
    params_.validate();
    if (params_.lineBytes > bus_.params().maxBurstBytes)
        csb_fatal("CSB line (", params_.lineBytes,
                  ") exceeds the bus max burst (",
                  bus_.params().maxBurstBytes, ")");
    masterId_ = bus_.registerMaster(name + ".port");
    simulator.registerClocked(this);
}

bool
ConditionalStoreBuffer::canAcceptStore() const
{
    return outbox_.size() < params_.numLineBuffers;
}

void
ConditionalStoreBuffer::clearAccumulator()
{
    // The data register is cleared so that unused words are zero-
    // padded in the next burst, avoiding data leaks between processes
    // (section 3.2).
    data_.fill(0);
    valid_.reset();
}

void
ConditionalStoreBuffer::store(ProcId pid, Addr addr, unsigned size,
                              const void *data)
{
    ungate();
    csb_assert(canAcceptStore(), "CSB store while all line buffers busy");
    csb_assert(size > 0 && size <= 8 && isPowerOf2(size) &&
               addr % size == 0, "bad combining store shape");

    Addr line = roundDown(addr, params_.lineBytes);
    bool match = hitCounter_ > 0 && pid_ == pid && lineAddr_ == line;
    if (!match) {
        if (hitCounter_ > 0)
            ++conflictsOnStore;
        clearAccumulator();
        lineAddr_ = line;
        pid_ = pid;
        hitCounter_ = 0;
    }

    unsigned offset = static_cast<unsigned>(addr - line);
    std::memcpy(data_.data() + offset, data, size);
    for (unsigned i = 0; i < size; ++i)
        valid_.set(offset + i);
    ++hitCounter_;
    ++storesAccepted;
    if (hitCounter_ == 1)
        accumStartTick_ = sim_.curTick();
    sim::trace::log("csb", "store pid=", pid, " addr=0x", std::hex, addr,
                    std::dec, " size=", size, (match ? "" : " (cleared)"),
                    " counter=", hitCounter_);
}

bool
ConditionalStoreBuffer::conditionalFlush(ProcId pid, Addr addr,
                                         std::uint64_t expected)
{
    ungate();
    ++flushesAttempted;
    Addr line = roundDown(addr, params_.lineBytes);

    bool match = hitCounter_ != 0 && hitCounter_ == expected &&
                 pid_ == pid &&
                 (!params_.checkAddress || lineAddr_ == line);

    if (!match) {
        sim::trace::log("csb", "flush FAILED pid=", pid, " expected=",
                        expected, " counter=", hitCounter_);
        if (sim::trace::jsonEnabled()) {
            sim::trace::jsonInstant(
                "csb", "flush-fail", sim_.curTick(),
                {{"addr", sim::trace::hexArg(line)},
                 {"expected", std::to_string(expected)},
                 {"counter", std::to_string(hitCounter_)}});
        }
        clearAccumulator();
        hitCounter_ = 0;
        ++flushesFailed;
        return false;
    }

    fillAtFlush.sample(static_cast<double>(valid_.count()));
    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonSpan(
            "csb", "csb line " + sim::trace::hexArg(lineAddr_),
            accumStartTick_, sim_.curTick(),
            {{"stores", std::to_string(expected)},
             {"valid_bytes", std::to_string(valid_.count())}});
    }

    // Success: hand the (zero-padded) line to the system interface.
    // The CsbFlushDrop DEBUG knob models a buggy CSB that reports
    // success but loses the line; the litmus harness exists to catch
    // exactly this class of bug, so the drop happens after all the
    // success bookkeeping a real buggy implementation would also do.
    if (injector_ &&
        injector_->shouldFault(sim::FaultSite::CsbFlushDrop,
                               sim_.curTick())) {
        sim::trace::log("csb", "flush line DROPPED (debug bug knob) "
                        "pid=", pid, " line=0x", std::hex, line);
    } else {
        OutLine out;
        out.addr = lineAddr_;
        out.data = data_;
        out.valid = valid_;
        outbox_.push_back(std::move(out));
    }

    sim::trace::log("csb", "flush OK pid=", pid, " line=0x", std::hex,
                    line, std::dec, " stores=", expected);
    clearAccumulator();
    hitCounter_ = 0;
    ++flushesSucceeded;
    return true;
}

bool
ConditionalStoreBuffer::quiescent() const
{
    return hitCounter_ == 0 && outbox_.empty() && retryQueue_.empty() &&
           inflight_ == 0;
}

void
ConditionalStoreBuffer::tick()
{
    if (quiescent()) {
        // Nothing buffered and nothing in flight: no future edge can
        // do work until store()/conditionalFlush() ungate us.
        gate();
        return;
    }

    if (!canAcceptStore())
        storeStallCycles += 1;

    if (presentPending_ || !bus_.masterIdle(masterId_))
        return;

    // With bus faults possible, wait for the in-flight chunk's status
    // before issuing the next: a NACK discovered at completion would
    // otherwise replay behind a younger chunk, reordering the stream.
    if (inflight_ != 0 && bus_.ordersMustSerialize())
        return;

    // NACKed chunks reissue strictly before new outbox data so the
    // stream out of this port keeps its order.
    if (!retryQueue_.empty()) {
        RetryWrite &head = retryQueue_.front();
        if (sim_.curTick() < head.earliest)
            return;
        if (!bus_.wouldAcceptAtNextEdge(masterId_,
                                        /*strongly_ordered=*/true,
                                        /*is_write=*/true)) {
            return;
        }
        RetryWrite redo = std::move(head);
        retryQueue_.pop_front();
        issueWrite(redo.addr, std::move(redo.data), redo.lastChunk,
                   redo.attempt, /*from_outbox=*/false);
        return;
    }

    if (outbox_.empty())
        return;
    // Hand a line to the system interface only when the bus will take
    // it at the next edge; until then the line buffer stays occupied
    // (which is what gates following combining stores).
    if (!bus_.wouldAcceptAtNextEdge(masterId_, /*strongly_ordered=*/true,
                                    /*is_write=*/true)) {
        return;
    }

    OutLine &head = outbox_.front();

    if (degraded_ && headChunks_.empty()) {
        // Degraded mode: the device is refusing bursts, so fall back
        // to the PIO path -- decomposed <= 8-byte aligned stores of
        // the valid bytes (docs/FAULTS.md).
        for (const Chunk &chunk :
             decomposeAligned(head.addr, head.valid, params_.lineBytes,
                              /*max_chunk=*/8)) {
            headChunks_.push_back(chunk);
        }
        csb_assert(!headChunks_.empty(), "flushed an empty line");
    } else if (params_.partialFlush && headChunks_.empty() &&
               head.valid.count() != params_.lineBytes) {
        // Relaxed mode: issue only the valid bytes.
        for (const Chunk &chunk :
             decomposeAligned(head.addr, head.valid, params_.lineBytes,
                              bus_.params().maxBurstBytes)) {
            headChunks_.push_back(chunk);
        }
        csb_assert(!headChunks_.empty(), "flushed an empty line");
    }

    Addr txn_addr;
    unsigned txn_size;
    bool last_chunk;
    // Drain pending chunks unconditionally: a re-promotion mid-line
    // must not re-issue already-sent bytes as a fresh full burst.
    if (!headChunks_.empty()) {
        txn_addr = headChunks_.front().addr;
        txn_size = headChunks_.front().size;
        headChunks_.pop_front();
        last_chunk = headChunks_.empty();
    } else {
        // Base design: always a full zero-padded line burst.
        txn_addr = head.addr;
        txn_size = params_.lineBytes;
        last_chunk = true;
    }

    std::vector<std::uint8_t> payload(txn_size);
    std::memcpy(payload.data(), head.data.data() + (txn_addr - head.addr),
                txn_size);

    issueWrite(txn_addr, std::move(payload), last_chunk, /*attempt=*/0,
               /*from_outbox=*/true);
    if (last_chunk)
        ++linesIssued;
}

void
ConditionalStoreBuffer::issueWrite(Addr addr,
                                   std::vector<std::uint8_t> payload,
                                   bool last_chunk, unsigned attempt,
                                   bool from_outbox)
{
    // Keep our own copy until the bus acknowledges: the transaction's
    // payload is consumed by the bus whether or not delivery succeeds.
    std::vector<std::uint8_t> keep = payload;
    bool accepted = bus_.requestWrite(
        masterId_, addr, std::move(payload), /*strongly_ordered=*/true,
        /*on_complete=*/
        [this, addr, keep = std::move(keep), last_chunk,
         attempt](Tick when, bus::BusStatus status) mutable {
            csb_assert(inflight_ > 0, "CSB completion underflow");
            --inflight_;
            if (status == bus::BusStatus::Ok) {
                if (degraded_ && ++cleanStreak_ >= params_.repromoteAfter)
                    exitDegraded(when);
                return;
            }
            if (status == bus::BusStatus::Error) {
                csb_fatal(sim::Clocked::name(),
                          ": bus error on flush write at 0x",
                          std::hex, addr);
            }
            busNacks += 1;
            cleanStreak_ = 0;
            unsigned next_attempt = attempt + 1;
            if (next_attempt >= params_.retry.maxAttempts) {
                if (!params_.degradedFallback) {
                    csb_fatal(sim::Clocked::name(),
                              ": flush retries exhausted (",
                              params_.retry.maxAttempts, ") at 0x",
                              std::hex, addr);
                }
                // Escalate instead of dying: hold the attempt count at
                // the budget so the chunk keeps retrying at the
                // maximum backoff until the target recovers.
                enterDegraded(when);
                next_attempt = attempt;
            }
            busRetries += 1;
            retryQueue_.push_back(RetryWrite{
                addr, std::move(keep), last_chunk, next_attempt,
                when + params_.retry.backoffFor(attempt + 1)});
        },
        /*on_start=*/
        [this, last_chunk, from_outbox](Tick) {
            presentPending_ = false;
            if (from_outbox && last_chunk)
                outbox_.pop_front();
        });
    csb_assert(accepted, "bus refused CSB request despite idle master");
    presentPending_ = true;
    ++inflight_;
}

void
ConditionalStoreBuffer::enterDegraded(Tick now)
{
    if (degraded_)
        return;
    degraded_ = true;
    degradedSince_ = now;
    cleanStreak_ = 0;
    degradedEntries += 1;
    sim::trace::log("csb", "DEGRADED at ", now,
                    ": flush retry budget exhausted, falling back to "
                    "PIO stores");
    if (sim::trace::jsonEnabled())
        sim::trace::jsonInstant("csb", "degraded-enter", now, {});
}

void
ConditionalStoreBuffer::exitDegraded(Tick now)
{
    csb_assert(degraded_, "re-promotion outside degraded mode");
    degraded_ = false;
    degradedTicks += now - degradedSince_;
    repromotions += 1;
    cleanStreak_ = 0;
    sim::trace::log("csb", "re-promoted to burst mode at ", now,
                    " after ", params_.repromoteAfter,
                    " clean completions");
    if (sim::trace::jsonEnabled())
        sim::trace::jsonInstant("csb", "degraded-exit", now, {});
}

void
ConditionalStoreBuffer::checkpointSave(sim::CheckpointWriter &cw) const
{
    csb_assert(drained(), "CSB checkpoint requires drained() -- flushed "
                          "lines must have completed on the bus");
    cw.putU64(lineAddr_);
    cw.putU32(pid_);
    cw.putU64(hitCounter_);
    cw.putU64(accumStartTick_);
    cw.putU32(params_.lineBytes);
    cw.putBytes(data_.data(), params_.lineBytes);
    // Valid mask, 64 bits per word, low word first.
    for (unsigned word = 0; word < maxBlockBytes / 64; ++word) {
        std::uint64_t bits = 0;
        for (unsigned bit = 0; bit < 64; ++bit)
            if (valid_.test(word * 64 + bit))
                bits |= std::uint64_t(1) << bit;
        cw.putU64(bits);
    }
    // Degraded-mode residency is sticky across a checkpoint: a CSB
    // that crashed while degraded resumes degraded.
    cw.putU8(degraded_ ? 1 : 0);
    cw.putU32(cleanStreak_);
    cw.putU64(degradedSince_);
}

void
ConditionalStoreBuffer::checkpointRestore(sim::CheckpointReader &cr)
{
    csb_assert(drained(), "CSB checkpoint restore into a busy CSB");
    lineAddr_ = cr.getU64();
    pid_ = static_cast<ProcId>(cr.getU32());
    hitCounter_ = cr.getU64();
    accumStartTick_ = cr.getU64();
    const std::uint32_t line_bytes = cr.getU32();
    if (line_bytes != params_.lineBytes)
        csb_fatal("checkpoint CSB line is ", line_bytes,
                  " bytes, this CSB uses ", params_.lineBytes);
    std::vector<std::uint8_t> bytes = cr.getBytes();
    csb_assert(bytes.size() == line_bytes, "CSB line payload size");
    data_.fill(0);
    std::memcpy(data_.data(), bytes.data(), bytes.size());
    valid_.reset();
    for (unsigned word = 0; word < maxBlockBytes / 64; ++word) {
        std::uint64_t bits = cr.getU64();
        for (unsigned bit = 0; bit < 64; ++bit)
            if (bits & (std::uint64_t(1) << bit))
                valid_.set(word * 64 + bit);
    }
    degraded_ = cr.getU8() != 0;
    cleanStreak_ = cr.getU32();
    degradedSince_ = cr.getU64();
}

void
ConditionalStoreBuffer::debugDump(std::ostream &os) const
{
    os << "counter=" << hitCounter_ << " outbox=" << outbox_.size()
       << " retryQueue=" << retryQueue_.size()
       << " inflight=" << inflight_
       << " presentPending=" << (presentPending_ ? 1 : 0)
       << " degraded=" << (degraded_ ? 1 : 0);
    if (degraded_) {
        os << " degradedSince=" << degradedSince_
           << " cleanStreak=" << cleanStreak_ << '/'
           << params_.repromoteAfter;
    }
    if (!retryQueue_.empty()) {
        const RetryWrite &head = retryQueue_.front();
        os << "\n  retry head: addr=0x" << std::hex << head.addr
           << std::dec << " attempt=" << head.attempt << '/'
           << params_.retry.maxAttempts << " earliest=" << head.earliest;
    }
}

} // namespace csb::mem
