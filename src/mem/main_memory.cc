#include "main_memory.hh"

namespace csb::mem {

MainMemory::MainMemory(PhysicalMemory &storage, Tick read_latency,
                       std::string name,
                       sim::stats::StatGroup *stat_parent)
    : sim::stats::StatGroup(name, stat_parent),
      reads(this, "reads", "read transactions served"),
      writes(this, "writes", "write transactions absorbed"),
      storage_(storage), readLatency_(read_latency), name_(std::move(name))
{
}

void
MainMemory::write(const bus::BusTransaction &txn, Tick)
{
    // A snapshot payload (cache-line spill) describes bytes the image
    // already holds; re-applying it could clobber stores that
    // committed while the spill was queued or retried.  It still
    // counts: the wire carried it either way.
    if (!txn.snapshotPayload)
        storage_.write(txn.addr, txn.data.data(), txn.data.size());
    ++writes;
}

Tick
MainMemory::read(const bus::BusTransaction &txn, Tick,
                 std::vector<std::uint8_t> &data)
{
    data.resize(txn.size);
    storage_.read(txn.addr, data.data(), txn.size);
    ++reads;
    return readLatency_;
}

} // namespace csb::mem
