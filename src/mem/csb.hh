/**
 * @file
 * The conditional store buffer (CSB) -- the paper's contribution.
 *
 * A single cache-line-sized, software-controlled combining buffer for
 * the uncached-combining address space (section 3.2):
 *
 *  - A combining store whose (process ID, line address) match the
 *    buffered values merges its data and increments the hit counter.
 *    On a mismatch the buffer is cleared, the counter resets to 1 and
 *    the new data is stored.  Stores may arrive in any order.
 *
 *  - A conditional flush carries the expected hit-counter value.  If
 *    counter, process ID and (optionally) line address all match, the
 *    line is handed to the system interface as ONE burst transaction,
 *    zero-padded to a full line, and the buffer clears; the flush
 *    reports success.  Otherwise the buffer clears, the counter
 *    resets to 0, nothing is issued, and the flush reports failure --
 *    software branches back and retries (optimistic non-blocking
 *    synchronization).
 *
 * The flushed line is delivered to the bus by this object's own
 * master port.  With one line buffer, combining stores that arrive
 * while a flushed line is still waiting to be sent stall the core;
 * the paper's suggested extension of a second line buffer
 * (numLineBuffers = 2) removes that stall.
 */

#ifndef CSB_MEM_CSB_HH
#define CSB_MEM_CSB_HH

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bus/retry.hh"
#include "bus/system_bus.hh"
#include "decompose.hh"
#include "sim/clocked.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace csb::mem {

/** Configuration of the conditional store buffer. */
struct CsbParams
{
    /** Data register size in bytes = one cache line. */
    unsigned lineBytes = 64;
    /**
     * Line buffers available for flushed-but-not-yet-sent data.
     * 1 per the base design; 2 enables the pipelining extension.
     */
    unsigned numLineBuffers = 1;
    /**
     * Include the destination line address in the conflict check
     * (detects conflicts between threads of one process, section 3.2).
     */
    bool checkAddress = true;
    /**
     * When set, a successful flush issues only the valid bytes
     * (decomposed into aligned transactions) instead of a zero-padded
     * full line -- the "multiple burst sizes" relaxation the paper
     * mentions for buses that support it.
     */
    bool partialFlush = false;
    /** Backoff schedule for flush writes NACKed on the bus. */
    bus::RetryPolicy retry;
    /**
     * Recovery (docs/FAULTS.md): when a flush chunk exhausts its
     * retry budget, instead of a fatal error the CSB enters DEGRADED
     * mode -- the chunk keeps retrying at the maximum backoff, and
     * while degraded every line is issued as decomposed <= 8-byte
     * aligned stores (the uncached/PIO fallback path) rather than one
     * atomic line burst.  After repromoteAfter consecutive clean
     * completions the CSB re-promotes itself to burst mode.  Off by
     * default: the legacy fatal keeps misconfigured runs loud.
     */
    bool degradedFallback = false;
    /** Consecutive clean completions required to re-promote. */
    unsigned repromoteAfter = 8;

    void validate() const;
};

/**
 * The conditional store buffer.  Stores and flushes are driven by the
 * core's retire stage; the flush-to-bus path runs off this object's
 * clock.
 */
class ConditionalStoreBuffer : public sim::Clocked,
                               public sim::stats::StatGroup
{
  public:
    ConditionalStoreBuffer(sim::Simulator &simulator, bus::SystemBus &bus,
                           const CsbParams &params,
                           std::string name = "csb",
                           sim::stats::StatGroup *stat_parent = nullptr);

    /**
     * @return true when a combining store can be accepted now; false
     * while all line buffers hold flushed data awaiting the bus (the
     * core stalls retire in that case).
     */
    bool canAcceptStore() const;

    /**
     * A combining store retires.
     * @pre canAcceptStore()
     */
    void store(ProcId pid, Addr addr, unsigned size, const void *data);

    /**
     * A conditional flush retires.
     * @param expected the hit-counter value the software expects
     * @return true on success (the line was issued atomically)
     */
    bool conditionalFlush(ProcId pid, Addr addr, std::uint64_t expected);

    /** Current hit-counter value (tests / debugging). */
    std::uint64_t hitCounter() const { return hitCounter_; }

    /** Line address currently buffered (valid when hitCounter() > 0). */
    Addr lineAddr() const { return lineAddr_; }

    /** Process ID currently buffered. */
    ProcId pid() const { return pid_; }

    /** @return true while flushed lines wait for the bus. */
    bool flushPending() const { return !outbox_.empty(); }

    /** @return true while NACKed flush chunks await reissue. */
    bool retryPending() const { return !retryQueue_.empty(); }

    /** @return true when nothing is buffered or in flight. */
    bool quiescent() const;

    /**
     * @return true when all flushed lines have completed on the bus
     * (unflushed accumulating stores are allowed -- they have no bus
     * side effects yet).
     */
    bool
    drained() const
    {
        return outbox_.empty() && retryQueue_.empty() && inflight_ == 0;
    }

    void tick() override;

    void debugDump(std::ostream &os) const override;

    /**
     * Attach the system's fault injector (null detaches).  The only
     * site consulted here is the FaultSite::CsbFlushDrop DEBUG knob:
     * when it fires, a successful flush's line is silently discarded
     * instead of entering the outbox -- an intentional exactly-once
     * violation the litmus harness must detect (docs/LITMUS.md).
     */
    void setFaultInjector(sim::FaultInjector *injector)
    {
        injector_ = injector;
    }

    /**
     * Serialize the accumulating line register (data, valid mask, line
     * address, pid, hit counter).  @pre drained() -- the outbox, retry
     * queue and in-flight counters are empty at a checkpoint boundary,
     * but the accumulator may legitimately hold an unflushed line.
     */
    void checkpointSave(sim::CheckpointWriter &cw) const;

    /** Restore the accumulator written by checkpointSave(). */
    void checkpointRestore(sim::CheckpointReader &cr);

    const CsbParams &params() const { return params_; }

    /** @return true while the PIO-fallback degraded mode is active. */
    bool degraded() const { return degraded_; }

    /** Tick degraded mode was entered (valid while degraded()). */
    Tick degradedSince() const { return degradedSince_; }

    sim::stats::Scalar storesAccepted;
    sim::stats::Scalar conflictsOnStore;
    sim::stats::Scalar flushesAttempted;
    sim::stats::Scalar flushesSucceeded;
    sim::stats::Scalar flushesFailed;
    sim::stats::Scalar linesIssued;
    sim::stats::Scalar storeStallCycles;
    /** Flush writes NACKed on the bus. */
    sim::stats::Scalar busNacks;
    /** NACKed flush writes reissued after backoff. */
    sim::stats::Scalar busRetries;
    /** Retry-budget exhaustions that escalated to degraded mode. */
    sim::stats::Scalar degradedEntries;
    /** Re-promotions to burst mode after clean completions. */
    sim::stats::Scalar repromotions;
    /** Ticks spent in degraded mode (closed episodes only). */
    sim::stats::Scalar degradedTicks;
    /** Valid bytes in the line register at each successful flush. */
    sim::stats::Distribution fillAtFlush;

  private:
    struct OutLine
    {
        Addr addr = 0;
        std::array<std::uint8_t, maxBlockBytes> data{};
        ValidMask valid;
    };

    /** A NACKed flush chunk waiting out its backoff. */
    struct RetryWrite
    {
        Addr addr = 0;
        std::vector<std::uint8_t> data;
        bool lastChunk = true;
        unsigned attempt = 0;
        Tick earliest = 0;
    };

    void clearAccumulator();

    /** Escalate to degraded mode (idempotent while degraded). */
    void enterDegraded(Tick now);

    /** Re-promote to burst mode after a clean streak. */
    void exitDegraded(Tick now);

    /**
     * Present one write to the bus.  The CSB keeps its own copy of the
     * payload until the bus acknowledges delivery, so a NACKed chunk
     * can be reissued byte-identically.
     */
    void issueWrite(Addr addr, std::vector<std::uint8_t> payload,
                    bool last_chunk, unsigned attempt, bool from_outbox);

    sim::Simulator &sim_;
    bus::SystemBus &bus_;
    CsbParams params_;
    MasterId masterId_;
    /** Optional fault injector (not owned); null = no faults. */
    sim::FaultInjector *injector_ = nullptr;

    // Accumulating line register.
    std::array<std::uint8_t, maxBlockBytes> data_{};
    ValidMask valid_;
    Addr lineAddr_ = 0;
    ProcId pid_ = 0;
    std::uint64_t hitCounter_ = 0;
    /** Tick of the first store of the current sequence (trace spans). */
    Tick accumStartTick_ = 0;

    /** Flushed lines waiting for their bus transaction to start. */
    std::deque<OutLine> outbox_;
    /** Chunks of the partially-flushed head line (partialFlush mode). */
    std::deque<Chunk> headChunks_;
    /**
     * NACKed chunks awaiting reissue.  Serviced strictly before the
     * outbox so a retried chunk is never overtaken by younger data
     * from the same port.
     */
    std::deque<RetryWrite> retryQueue_;
    bool presentPending_ = false;
    unsigned inflight_ = 0;

    // Degraded-mode (PIO fallback) state, docs/FAULTS.md.
    bool degraded_ = false;
    unsigned cleanStreak_ = 0;
    Tick degradedSince_ = 0;
};

} // namespace csb::mem

#endif // CSB_MEM_CSB_HH
