/**
 * @file
 * Decomposition of a partially valid block into the minimal sequence
 * of naturally aligned, power-of-two bus transactions.
 *
 * The paper's bus model only supports power-of-two transfer sizes
 * from 1 byte to a cache line, naturally aligned (section 4.1); when
 * the uncached buffer could not combine a whole block it must issue
 * several smaller transactions.  This greedy largest-fit split is the
 * mechanism behind two observations in the paper: the better bus
 * utilisation when going from 7 to 8 combined doublewords (figure 5),
 * and the occasional advantage of a *smaller* combining buffer for
 * medium transfers (figures 3a/3f).
 */

#ifndef CSB_MEM_DECOMPOSE_HH
#define CSB_MEM_DECOMPOSE_HH

#include <bitset>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace csb::mem {

/** Maximum block size handled by the decomposer (one cache line). */
constexpr unsigned maxBlockBytes = 128;

/** Valid-byte mask of a block. */
using ValidMask = std::bitset<maxBlockBytes>;

/** One naturally aligned power-of-two transfer. */
struct Chunk
{
    Addr addr = 0;
    unsigned size = 0;

    bool
    operator==(const Chunk &other) const
    {
        return addr == other.addr && size == other.size;
    }
};

/**
 * Split the valid bytes of the block at @p block_base into naturally
 * aligned power-of-two chunks, none exceeding @p max_txn_bytes, each
 * covering only valid bytes.
 *
 * @param block_base    block-aligned base address
 * @param valid         per-byte valid bits (bit i = block_base + i)
 * @param block_size    block size in bytes (power of two <= 128)
 * @param max_txn_bytes largest legal transaction (power of two)
 * @return chunks in ascending address order
 */
std::vector<Chunk> decomposeAligned(Addr block_base, const ValidMask &valid,
                                    unsigned block_size,
                                    unsigned max_txn_bytes);

} // namespace csb::mem

#endif // CSB_MEM_DECOMPOSE_HH
