/**
 * @file
 * Main memory as a bus target: functional storage plus a fixed
 * access latency for reads (writes complete with the bus transfer).
 */

#ifndef CSB_MEM_MAIN_MEMORY_HH
#define CSB_MEM_MAIN_MEMORY_HH

#include <string>

#include "bus/bus_target.hh"
#include "physical_memory.hh"
#include "sim/stats.hh"

namespace csb::mem {

/** DRAM model: constant-latency reads, posted writes. */
class MainMemory : public bus::BusTarget, public sim::stats::StatGroup
{
  public:
    MainMemory(PhysicalMemory &storage, Tick read_latency,
               std::string name = "mem",
               sim::stats::StatGroup *stat_parent = nullptr);

    const std::string &targetName() const override { return name_; }

    void write(const bus::BusTransaction &txn, Tick now) override;

    Tick read(const bus::BusTransaction &txn, Tick now,
              std::vector<std::uint8_t> &data) override;

    sim::stats::Scalar reads;
    sim::stats::Scalar writes;

  private:
    PhysicalMemory &storage_;
    Tick readLatency_;
    std::string name_;
};

} // namespace csb::mem

#endif // CSB_MEM_MAIN_MEMORY_HH
