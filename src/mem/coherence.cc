#include "coherence.hh"

#include "sim/logging.hh"

namespace csb::mem {

const char *
lineStateName(LineState state)
{
    switch (state) {
      case LineState::Invalid: return "I";
      case LineState::Shared: return "S";
      case LineState::Exclusive: return "E";
      case LineState::Modified: return "M";
    }
    return "?";
}

const char *
coherenceKindName(CoherenceKind kind)
{
    switch (kind) {
      case CoherenceKind::None: return "none";
      case CoherenceKind::Mesi: return "mesi";
    }
    return "?";
}

void
CoherenceParams::validate() const
{
    if (kind == CoherenceKind::None)
        return;
    if (upgradeLatency == 0)
        csb_fatal("coherence upgradeLatency must be positive");
    if (cacheToCacheLatency == 0)
        csb_fatal("coherence cacheToCacheLatency must be positive");
}

LineState
MesiPolicy::fillState(bool is_write, bool others_had_copy) const
{
    if (is_write)
        return LineState::Modified; // read-exclusive invalidated the rest
    return others_had_copy ? LineState::Shared : LineState::Exclusive;
}

bool
MesiPolicy::writeNeedsUpgrade(LineState cur) const
{
    // E -> M and M -> M are silent; only a Shared copy must announce
    // the write so the other holders invalidate.
    return cur == LineState::Shared;
}

SnoopAction
MesiPolicy::snoop(LineState cur, bus::SnoopKind kind) const
{
    SnoopAction act;
    if (cur == LineState::Invalid)
        return act; // no copy, nothing to do

    switch (kind) {
      case bus::SnoopKind::Read:
        // Readers join a Shared set.  An owner (M or E) supplies the
        // line; a Modified owner also demand-writes-back so memory is
        // no longer behind.
        act.next = LineState::Shared;
        act.supply = cur != LineState::Shared;
        act.writeback = cur == LineState::Modified;
        return act;
      case bus::SnoopKind::ReadExclusive:
        // A writer takes the line; every copy dies.  The owner still
        // supplies (and cleans) it on the way out.
        act.next = LineState::Invalid;
        act.supply = cur != LineState::Shared;
        act.writeback = cur == LineState::Modified;
        return act;
      case bus::SnoopKind::Upgrade:
        // The requester already holds a Shared copy, so a well-formed
        // run only reaches this cell from Shared.  M/E observing an
        // upgrade means the invariant was already broken; react like a
        // ReadExclusive minus the supply (nobody asked for data) so
        // the damage stays bounded.
        act.next = LineState::Invalid;
        act.supply = false;
        act.writeback = cur == LineState::Modified;
        return act;
    }
    return act;
}

std::unique_ptr<CoherencePolicy>
makeCoherencePolicy(CoherenceKind kind)
{
    switch (kind) {
      case CoherenceKind::None: return nullptr;
      case CoherenceKind::Mesi: return std::make_unique<MesiPolicy>();
    }
    csb_fatal("unknown coherence kind ", unsigned(kind));
}

} // namespace csb::mem
