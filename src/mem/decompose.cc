#include "decompose.hh"

#include "sim/logging.hh"

namespace csb::mem {

namespace {

/** @return true when bytes [offset, offset+size) are all valid. */
bool
allValid(const ValidMask &valid, unsigned offset, unsigned size)
{
    for (unsigned i = offset; i < offset + size; ++i) {
        if (!valid.test(i))
            return false;
    }
    return true;
}

} // namespace

std::vector<Chunk>
decomposeAligned(Addr block_base, const ValidMask &valid,
                 unsigned block_size, unsigned max_txn_bytes)
{
    csb_assert(isPowerOf2(block_size) && block_size <= maxBlockBytes,
               "bad block size ", block_size);
    csb_assert(isPowerOf2(max_txn_bytes), "bad max txn ", max_txn_bytes);
    csb_assert(block_base % block_size == 0, "unaligned block base");

    std::vector<Chunk> chunks;
    unsigned offset = 0;
    while (offset < block_size) {
        if (!valid.test(offset)) {
            ++offset;
            continue;
        }
        // Largest aligned power-of-two fully-valid chunk at offset.
        unsigned best = 1;
        for (unsigned size = 2;
             size <= max_txn_bytes && size <= block_size; size *= 2) {
            if (offset % size != 0)
                break;
            if (offset + size > block_size)
                break;
            if (!allValid(valid, offset, size))
                break;
            best = size;
        }
        chunks.push_back(Chunk{block_base + offset, best});
        offset += best;
    }
    return chunks;
}

} // namespace csb::mem
