/**
 * @file
 * Sparse functional backing store for the simulated physical address
 * space.  Timing lives elsewhere (caches, bus, MainMemory target);
 * this class only holds bytes.
 */

#ifndef CSB_MEM_PHYSICAL_MEMORY_HH
#define CSB_MEM_PHYSICAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace csb::sim {
class CheckpointWriter;
class CheckpointReader;
} // namespace csb::sim

namespace csb::mem {

/** Byte-addressable sparse memory, allocated in 4 KiB frames. */
class PhysicalMemory
{
  public:
    static constexpr Addr frameSize = 4096;

    PhysicalMemory() = default;

    PhysicalMemory(const PhysicalMemory &) = delete;
    PhysicalMemory &operator=(const PhysicalMemory &) = delete;

    /** Read @p size bytes at @p addr; untouched frames read as zero. */
    void read(Addr addr, void *buffer, std::size_t size) const;

    /** Write @p size bytes at @p addr. */
    void write(Addr addr, const void *buffer, std::size_t size);

    /** Convenience typed accessors (little endian, like SPARC V9 LE). */
    template <typename T>
    T
    readT(Addr addr) const
    {
        T value{};
        read(addr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    writeT(Addr addr, T value)
    {
        write(addr, &value, sizeof(T));
    }

    /** Number of frames currently allocated (for tests). */
    std::size_t framesAllocated() const { return frames_.size(); }

    /**
     * Serialize every allocated frame, sorted by frame address so the
     * byte stream is independent of allocation order (the hash map
     * iterates in an unspecified order).  See docs/CHECKPOINT.md.
     */
    void checkpointSave(sim::CheckpointWriter &cw) const;

    /** Restore frames written by checkpointSave() into empty memory. */
    void checkpointRestore(sim::CheckpointReader &cr);

  private:
    using Frame = std::array<std::uint8_t, frameSize>;

    Frame *frameFor(Addr addr, bool create) const;

    mutable std::unordered_map<Addr, std::unique_ptr<Frame>> frames_;
};

} // namespace csb::mem

#endif // CSB_MEM_PHYSICAL_MEMORY_HH
