/**
 * @file
 * Page attributes, page table and a small TLB.
 *
 * Following the paper's section 3.1, the choice of which stores
 * combine is encoded as a page attribute rather than as new opcodes:
 * the R10000 enables its accelerated uncached buffer with a page
 * table bit; we add one more attribute value for CSB (uncached
 * combining) space.  The simulator uses an identity virtual-to-
 * physical mapping; the page table carries attributes and ASIDs.
 */

#ifndef CSB_MEM_PAGE_TABLE_HH
#define CSB_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace csb::sim {
class CheckpointWriter;
class CheckpointReader;
} // namespace csb::sim

namespace csb::mem {

/** Memory attribute of a page (TLB-resident, per section 3.1). */
enum class PageAttr : std::uint8_t {
    /** Ordinary write-back cacheable memory. */
    Cached,
    /** Uncached: every access is a single-beat bus transaction. */
    Uncached,
    /**
     * Uncached accelerated: stores may be combined by the hardware-
     * transparent uncached buffer (R10000-style).
     */
    UncachedAccelerated,
    /**
     * Uncached combining: stores accumulate in the conditional store
     * buffer until an explicit conditional flush (the CSB space).
     */
    UncachedCombining,
};

const char *pageAttrName(PageAttr attr);

/** @return true when accesses bypass the cache hierarchy. */
inline bool
isUncachedAttr(PageAttr attr)
{
    return attr != PageAttr::Cached;
}

/**
 * Flat page table: maps page-aligned ranges to attributes.
 * Unmapped addresses default to Cached.
 */
class PageTable
{
  public:
    static constexpr Addr pageSize = 4096;

    /** Set the attribute of all pages covering [base, base+size). */
    void setAttr(Addr base, Addr size, PageAttr attr);

    /** Attribute of the page containing @p addr. */
    PageAttr attrOf(Addr addr) const;

  private:
    std::map<Addr, PageAttr> pages_;
};

/**
 * A small fully-associative TLB with true-LRU replacement and ASIDs.
 * Misses refill from the PageTable after a configurable penalty; the
 * CPU model charges the penalty on the access latency.
 */
class Tlb : public sim::stats::StatGroup
{
  public:
    Tlb(const PageTable &page_table, unsigned entries,
        Tick miss_penalty, std::string name = "tlb",
        sim::stats::StatGroup *stat_parent = nullptr);

    /**
     * Translate @p addr for address space @p asid.
     * @param penalty out: extra latency in CPU ticks (0 on a hit)
     * @return page attribute
     */
    PageAttr translate(Addr addr, ProcId asid, Tick &penalty);

    /** Drop all entries (e.g. after a page-table change). */
    void flush();

    /**
     * Serialize entry array + LRU clock (not stats; not the page
     * table, which is configuration).  Restore verifies entry count.
     */
    void checkpointSave(sim::CheckpointWriter &cw) const;
    void checkpointRestore(sim::CheckpointReader &cr);

    sim::stats::Scalar hits;
    sim::stats::Scalar misses;

  private:
    struct Entry
    {
        Addr vpn = 0;
        ProcId asid = 0;
        PageAttr attr = PageAttr::Cached;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    const PageTable &pageTable_;
    std::vector<Entry> entries_;
    Tick missPenalty_;
    std::uint64_t useClock_ = 0;
};

} // namespace csb::mem

#endif // CSB_MEM_PAGE_TABLE_HH
