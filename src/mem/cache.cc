#include "cache.hh"

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace csb::mem {

void
CacheParams::validate() const
{
    if (!isPowerOf2(lineBytes) || lineBytes < 8)
        csb_fatal("cache line must be a power of two >= 8, got ",
                  lineBytes);
    if (assoc == 0 || sizeBytes % (assoc * lineBytes) != 0)
        csb_fatal("cache size ", sizeBytes, " not divisible by assoc*line");
}

Cache::Cache(const CacheParams &params, std::string name,
             sim::stats::StatGroup *stat_parent)
    : sim::stats::StatGroup(std::move(name), stat_parent),
      hits(this, "hits", "cache hits"),
      misses(this, "misses", "cache misses"),
      writebacks(this, "writebacks", "dirty lines evicted"),
      params_(params)
{
    params_.validate();
    numSets_ = params_.sizeBytes / (params_.assoc * params_.lineBytes);
    lines_.resize(numSets_ * params_.assoc);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / params_.lineBytes) % numSets_);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    Addr tag = addr / params_.lineBytes;
    unsigned set = setIndex(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::AccessResult
Cache::access(Addr addr, bool is_write)
{
    ++useClock_;
    AccessResult result;

    if (Line *line = findLine(addr)) {
        line->lastUse = useClock_;
        line->dirty = line->dirty || is_write;
        if (is_write)
            line->shared = false; // S -> M; the hierarchy upgrades first
        result.hit = true;
        ++hits;
        return result;
    }

    ++misses;

    // Fill over the LRU way.
    Addr tag = addr / params_.lineBytes;
    unsigned set = setIndex(addr);
    Line *victim = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.writebackAddr = victim->tag * params_.lineBytes;
        ++writebacks;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = is_write;
    victim->shared = false; // fills land E/M; Shared is overlaid after
    victim->lastUse = useClock_;
    return result;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr))
        line->setState(LineState::Invalid);
}

void
Cache::flushAll()
{
    for (Line &line : lines_)
        line.setState(LineState::Invalid);
}

LineState
Cache::lineState(Addr addr) const
{
    const Line *line = findLine(addr);
    return line ? line->state() : LineState::Invalid;
}

void
Cache::setLineState(Addr addr, LineState state)
{
    if (Line *line = findLine(addr))
        line->setState(state);
}

void
Cache::checkpointSave(sim::CheckpointWriter &cw) const
{
    cw.putU64(useClock_);
    cw.putU64(lines_.size());
    for (const Line &line : lines_) {
        cw.putU64(line.tag);
        // One flags byte: bit0 valid, bit1 dirty, bit2 shared
        // (docs/CHECKPOINT.md).
        std::uint8_t flags = (line.valid ? 1u : 0u) |
                             (line.dirty ? 2u : 0u) |
                             (line.shared ? 4u : 0u);
        cw.putU8(flags);
        cw.putU64(line.lastUse);
    }
}

void
Cache::checkpointRestore(sim::CheckpointReader &cr)
{
    useClock_ = cr.getU64();
    const std::uint64_t count = cr.getU64();
    if (count != lines_.size())
        csb_fatal("checkpoint cache '", statName(), "' has ", count,
                  " lines, this cache has ", lines_.size(),
                  " -- geometry mismatch");
    for (Line &line : lines_) {
        line.tag = cr.getU64();
        std::uint8_t flags = cr.getU8();
        line.valid = (flags & 1) != 0;
        line.dirty = (flags & 2) != 0;
        line.shared = (flags & 4) != 0;
        line.lastUse = cr.getU64();
    }
}

CacheHierarchy::CacheHierarchy(const CacheParams &l1, const CacheParams &l2,
                               Tick mem_latency, std::string name,
                               sim::stats::StatGroup *stat_parent)
    : sim::stats::StatGroup(std::move(name), stat_parent),
      upgrades(this, "upgrades",
               "S->M upgrade broadcasts issued"),
      cacheToCacheFills(this, "cacheToCacheFills",
                        "fills supplied by another cache"),
      snoopHits(this, "snoopHits",
                "snoop probes answered with a valid copy"),
      snoopInvalidations(this, "snoopInvalidations",
                         "local copies invalidated by remote probes"),
      snoopWritebacks(this, "snoopWritebacks",
                      "dirty copies demand-written-back on probes"),
      l1_(l1, "l1", this), l2_(l2, "l2", this), memLatency_(mem_latency)
{
}

void
CacheHierarchy::setCoherence(const CoherencePolicy *policy,
                             const CoherenceParams &params,
                             SnoopBroadcast broadcast)
{
    csb_assert(policy && broadcast,
               "setCoherence needs a policy and a broadcast hook");
    cohPolicy_ = policy;
    cohParams_ = params;
    snoopBroadcast_ = std::move(broadcast);
}

LineState
CacheHierarchy::lineState(Addr addr) const
{
    LineState a = l1_.lineState(addr);
    LineState b = l2_.lineState(addr);
    return static_cast<unsigned>(a) >= static_cast<unsigned>(b) ? a : b;
}

CacheHierarchy::CohOutcome
CacheHierarchy::coherentPre(Addr addr, bool is_write)
{
    CohOutcome o;
    if (!cohPolicy_)
        return o;

    Addr line = roundDown(addr, l2_.params().lineBytes);
    LineState st = lineState(line);
    if (st == LineState::Invalid) {
        // Full-hierarchy miss: announce the fill so owners downgrade
        // (Read) or every copy dies (ReadExclusive) before we fill.
        bus::SnoopSummary sum = snoopBroadcast_(
            line, is_write ? bus::SnoopKind::ReadExclusive
                           : bus::SnoopKind::Read);
        o.isFill = true;
        o.supplied = sum.supplied;
        LineState fill = cohPolicy_->fillState(is_write, sum.hadCopy);
        o.fillShared = fill == LineState::Shared;
        if (o.supplied)
            ++cacheToCacheFills;
        return o;
    }
    if (is_write && cohPolicy_->writeNeedsUpgrade(st)) {
        snoopBroadcast_(line, bus::SnoopKind::Upgrade);
        ++upgrades;
        o.extra = cohParams_.upgradeLatency;
    }
    return o;
}

void
CacheHierarchy::applyFill(Addr addr, const CohOutcome &o)
{
    if (!cohPolicy_)
        return;
    Addr line = roundDown(addr, l2_.params().lineBytes);
    if (o.isFill) {
        if (o.fillShared) {
            l1_.setLineState(line, LineState::Shared);
            l2_.setLineState(line, LineState::Shared);
        }
        return;
    }
    // An L1 refill from a Shared L2 copy must stay Shared, or a later
    // write to the seemingly-Exclusive L1 line would skip the upgrade
    // broadcast and leave stale remote copies behind.
    if (l2_.lineState(line) == LineState::Shared &&
        l1_.lineState(line) == LineState::Exclusive) {
        l1_.setLineState(line, LineState::Shared);
    }
}

bus::SnoopReply
CacheHierarchy::snoopProbe(Addr line_addr, bus::SnoopKind kind)
{
    csb_assert(cohPolicy_, "snoopProbe on a non-coherent hierarchy");
    bus::SnoopReply reply;
    LineState st = lineState(line_addr);
    if (st == LineState::Invalid)
        return reply;

    SnoopAction act = cohPolicy_->snoop(st, kind);
    reply.hadCopy = true;
    reply.supplied = act.supply;
    reply.wroteBack = act.writeback;
    reply.invalidated = act.next == LineState::Invalid;

    ++snoopHits;
    if (act.writeback) {
        ++snoopWritebacks;
        // Demand write-back: memory stops being behind the owner.  The
        // payload is a snapshot of an image stores keep current, so
        // this is pure bus traffic (BusTransaction::snapshotPayload).
        if (lineWriteback_)
            lineWriteback_(line_addr);
    }
    if (reply.invalidated)
        ++snoopInvalidations;

    l1_.setLineState(line_addr, act.next);
    l2_.setLineState(line_addr, act.next);
    return reply;
}

Tick
CacheHierarchy::accessLatency(Addr addr, bool is_write)
{
    CohOutcome coh = coherentPre(addr, is_write);
    Tick latency = coh.extra + l1_.params().hitLatency;
    Cache::AccessResult r1 = l1_.access(addr, is_write);
    if (r1.hit) {
        applyFill(addr, coh);
        return latency;
    }

    // The L1 is write-back; a dirty victim moves into the L2.
    if (r1.writeback)
        l2_.access(r1.writebackAddr, /*is_write=*/true);

    latency += l2_.params().hitLatency;
    Cache::AccessResult r2 = l2_.access(addr, /*is_write=*/false);
    if (r2.hit) {
        applyFill(addr, coh);
        return latency;
    }

    if (r2.writeback && lineWriteback_)
        lineWriteback_(roundDown(r2.writebackAddr, l2_.params().lineBytes));

    applyFill(addr, coh);
    // A cache-to-cache intervention beats DRAM on the fixed-latency
    // path; bus-routed fetches keep the bus's own timing.
    Tick fill = coh.supplied ? cohParams_.cacheToCacheLatency
                             : memLatency_;
    return latency + fill;
}

void
CacheHierarchy::access(Addr addr, bool is_write, Tick now,
                       const std::function<void(Tick)> &done)
{
    csb_assert(deferredCall, "CacheHierarchy::access needs deferredCall");

    CohOutcome coh = coherentPre(addr, is_write);
    Tick latency = coh.extra + l1_.params().hitLatency;
    Cache::AccessResult r1 = l1_.access(addr, is_write);
    if (r1.hit) {
        applyFill(addr, coh);
        deferredCall(now + latency, [done, t = now + latency] { done(t); });
        return;
    }
    if (r1.writeback)
        l2_.access(r1.writebackAddr, /*is_write=*/true);

    latency += l2_.params().hitLatency;
    Cache::AccessResult r2 = l2_.access(addr, /*is_write=*/false);
    if (r2.hit) {
        applyFill(addr, coh);
        deferredCall(now + latency, [done, t = now + latency] { done(t); });
        return;
    }
    if (r2.writeback && lineWriteback_)
        lineWriteback_(roundDown(r2.writebackAddr, l2_.params().lineBytes));

    applyFill(addr, coh);
    if (lineFetch_) {
        // Route the fill over the bus: completion when the line read
        // returns, plus the lookup latencies already charged.
        Addr line_addr = roundDown(addr, l2_.params().lineBytes);
        Tick lookup_done = now + latency;
        lineFetch_(line_addr, [done, lookup_done](Tick fill_done) {
            done(fill_done > lookup_done ? fill_done : lookup_done);
        });
    } else {
        Tick fill = coh.supplied ? cohParams_.cacheToCacheLatency
                                 : memLatency_;
        Tick t = now + latency + fill;
        deferredCall(t, [done, t] { done(t); });
    }
}

void
CacheHierarchy::checkpointSave(sim::CheckpointWriter &cw) const
{
    l1_.checkpointSave(cw);
    l2_.checkpointSave(cw);
}

void
CacheHierarchy::checkpointRestore(sim::CheckpointReader &cr)
{
    l1_.checkpointRestore(cr);
    l2_.checkpointRestore(cr);
}

void
CacheHierarchy::touch(Addr addr)
{
    l2_.access(addr, /*is_write=*/false);
    l1_.access(addr, /*is_write=*/false);
}

void
CacheHierarchy::evict(Addr addr)
{
    l1_.invalidate(addr);
    l2_.invalidate(addr);
}

} // namespace csb::mem
