#include "cache.hh"

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace csb::mem {

void
CacheParams::validate() const
{
    if (!isPowerOf2(lineBytes) || lineBytes < 8)
        csb_fatal("cache line must be a power of two >= 8, got ",
                  lineBytes);
    if (assoc == 0 || sizeBytes % (assoc * lineBytes) != 0)
        csb_fatal("cache size ", sizeBytes, " not divisible by assoc*line");
}

Cache::Cache(const CacheParams &params, std::string name,
             sim::stats::StatGroup *stat_parent)
    : sim::stats::StatGroup(std::move(name), stat_parent),
      hits(this, "hits", "cache hits"),
      misses(this, "misses", "cache misses"),
      writebacks(this, "writebacks", "dirty lines evicted"),
      params_(params)
{
    params_.validate();
    numSets_ = params_.sizeBytes / (params_.assoc * params_.lineBytes);
    lines_.resize(numSets_ * params_.assoc);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / params_.lineBytes) % numSets_);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    Addr tag = addr / params_.lineBytes;
    unsigned set = setIndex(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::AccessResult
Cache::access(Addr addr, bool is_write)
{
    ++useClock_;
    AccessResult result;

    if (Line *line = findLine(addr)) {
        line->lastUse = useClock_;
        line->dirty = line->dirty || is_write;
        result.hit = true;
        ++hits;
        return result;
    }

    ++misses;

    // Fill over the LRU way.
    Addr tag = addr / params_.lineBytes;
    unsigned set = setIndex(addr);
    Line *victim = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.writebackAddr = victim->tag * params_.lineBytes;
        ++writebacks;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lastUse = useClock_;
    return result;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr))
        line->valid = false;
}

void
Cache::flushAll()
{
    for (Line &line : lines_)
        line.valid = false;
}

void
Cache::checkpointSave(sim::CheckpointWriter &cw) const
{
    cw.putU64(useClock_);
    cw.putU64(lines_.size());
    for (const Line &line : lines_) {
        cw.putU64(line.tag);
        cw.putU8(line.valid ? 1 : 0);
        cw.putU8(line.dirty ? 1 : 0);
        cw.putU64(line.lastUse);
    }
}

void
Cache::checkpointRestore(sim::CheckpointReader &cr)
{
    useClock_ = cr.getU64();
    const std::uint64_t count = cr.getU64();
    if (count != lines_.size())
        csb_fatal("checkpoint cache '", statName(), "' has ", count,
                  " lines, this cache has ", lines_.size(),
                  " -- geometry mismatch");
    for (Line &line : lines_) {
        line.tag = cr.getU64();
        line.valid = cr.getU8() != 0;
        line.dirty = cr.getU8() != 0;
        line.lastUse = cr.getU64();
    }
}

CacheHierarchy::CacheHierarchy(const CacheParams &l1, const CacheParams &l2,
                               Tick mem_latency, std::string name,
                               sim::stats::StatGroup *stat_parent)
    : sim::stats::StatGroup(std::move(name), stat_parent),
      l1_(l1, "l1", this), l2_(l2, "l2", this), memLatency_(mem_latency)
{
}

Tick
CacheHierarchy::accessLatency(Addr addr, bool is_write)
{
    Tick latency = l1_.params().hitLatency;
    Cache::AccessResult r1 = l1_.access(addr, is_write);
    if (r1.hit)
        return latency;

    // The L1 is write-back; a dirty victim moves into the L2.
    if (r1.writeback)
        l2_.access(r1.writebackAddr, /*is_write=*/true);

    latency += l2_.params().hitLatency;
    Cache::AccessResult r2 = l2_.access(addr, /*is_write=*/false);
    if (r2.hit)
        return latency;

    if (r2.writeback && lineWriteback_)
        lineWriteback_(roundDown(r2.writebackAddr, l2_.params().lineBytes));

    return latency + memLatency_;
}

void
CacheHierarchy::access(Addr addr, bool is_write, Tick now,
                       const std::function<void(Tick)> &done)
{
    csb_assert(deferredCall, "CacheHierarchy::access needs deferredCall");

    Tick latency = l1_.params().hitLatency;
    Cache::AccessResult r1 = l1_.access(addr, is_write);
    if (r1.hit) {
        deferredCall(now + latency, [done, t = now + latency] { done(t); });
        return;
    }
    if (r1.writeback)
        l2_.access(r1.writebackAddr, /*is_write=*/true);

    latency += l2_.params().hitLatency;
    Cache::AccessResult r2 = l2_.access(addr, /*is_write=*/false);
    if (r2.hit) {
        deferredCall(now + latency, [done, t = now + latency] { done(t); });
        return;
    }
    if (r2.writeback && lineWriteback_)
        lineWriteback_(roundDown(r2.writebackAddr, l2_.params().lineBytes));

    if (lineFetch_) {
        // Route the fill over the bus: completion when the line read
        // returns, plus the lookup latencies already charged.
        Addr line_addr = roundDown(addr, l2_.params().lineBytes);
        Tick lookup_done = now + latency;
        lineFetch_(line_addr, [done, lookup_done](Tick fill_done) {
            done(fill_done > lookup_done ? fill_done : lookup_done);
        });
    } else {
        Tick t = now + latency + memLatency_;
        deferredCall(t, [done, t] { done(t); });
    }
}

void
CacheHierarchy::checkpointSave(sim::CheckpointWriter &cw) const
{
    l1_.checkpointSave(cw);
    l2_.checkpointSave(cw);
}

void
CacheHierarchy::checkpointRestore(sim::CheckpointReader &cr)
{
    l1_.checkpointRestore(cr);
    l2_.checkpointRestore(cr);
}

void
CacheHierarchy::touch(Addr addr)
{
    l2_.access(addr, /*is_write=*/false);
    l1_.access(addr, /*is_write=*/false);
}

void
CacheHierarchy::evict(Addr addr)
{
    l1_.invalidate(addr);
    l2_.invalidate(addr);
}

} // namespace csb::mem
