#include "physical_memory.hh"

#include <cstring>

#include "sim/logging.hh"

namespace csb::mem {

PhysicalMemory::Frame *
PhysicalMemory::frameFor(Addr addr, bool create) const
{
    Addr frame_base = roundDown(addr, frameSize);
    auto it = frames_.find(frame_base);
    if (it != frames_.end())
        return it->second.get();
    if (!create)
        return nullptr;
    auto frame = std::make_unique<Frame>();
    frame->fill(0);
    Frame *raw = frame.get();
    frames_.emplace(frame_base, std::move(frame));
    return raw;
}

void
PhysicalMemory::read(Addr addr, void *buffer, std::size_t size) const
{
    auto *out = static_cast<std::uint8_t *>(buffer);
    while (size > 0) {
        Addr offset = addr % frameSize;
        std::size_t chunk =
            std::min<std::size_t>(size, frameSize - offset);
        const Frame *frame = frameFor(addr, /*create=*/false);
        if (frame) {
            std::memcpy(out, frame->data() + offset, chunk);
        } else {
            std::memset(out, 0, chunk);
        }
        out += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
PhysicalMemory::write(Addr addr, const void *buffer, std::size_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buffer);
    while (size > 0) {
        Addr offset = addr % frameSize;
        std::size_t chunk =
            std::min<std::size_t>(size, frameSize - offset);
        Frame *frame = frameFor(addr, /*create=*/true);
        std::memcpy(frame->data() + offset, in, chunk);
        in += chunk;
        addr += chunk;
        size -= chunk;
    }
}

} // namespace csb::mem
