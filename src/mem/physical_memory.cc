#include "physical_memory.hh"

#include <algorithm>
#include <cstring>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace csb::mem {

PhysicalMemory::Frame *
PhysicalMemory::frameFor(Addr addr, bool create) const
{
    Addr frame_base = roundDown(addr, frameSize);
    auto it = frames_.find(frame_base);
    if (it != frames_.end())
        return it->second.get();
    if (!create)
        return nullptr;
    auto frame = std::make_unique<Frame>();
    frame->fill(0);
    Frame *raw = frame.get();
    frames_.emplace(frame_base, std::move(frame));
    return raw;
}

void
PhysicalMemory::read(Addr addr, void *buffer, std::size_t size) const
{
    auto *out = static_cast<std::uint8_t *>(buffer);
    while (size > 0) {
        Addr offset = addr % frameSize;
        std::size_t chunk =
            std::min<std::size_t>(size, frameSize - offset);
        const Frame *frame = frameFor(addr, /*create=*/false);
        if (frame) {
            std::memcpy(out, frame->data() + offset, chunk);
        } else {
            std::memset(out, 0, chunk);
        }
        out += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
PhysicalMemory::write(Addr addr, const void *buffer, std::size_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buffer);
    while (size > 0) {
        Addr offset = addr % frameSize;
        std::size_t chunk =
            std::min<std::size_t>(size, frameSize - offset);
        Frame *frame = frameFor(addr, /*create=*/true);
        std::memcpy(frame->data() + offset, in, chunk);
        in += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
PhysicalMemory::checkpointSave(sim::CheckpointWriter &cw) const
{
    std::vector<Addr> bases;
    bases.reserve(frames_.size());
    for (const auto &[base, frame] : frames_)
        bases.push_back(base);
    std::sort(bases.begin(), bases.end());

    cw.putU64(bases.size());
    for (Addr base : bases) {
        cw.putU64(base);
        cw.putBytes(frames_.at(base)->data(), frameSize);
    }
}

void
PhysicalMemory::checkpointRestore(sim::CheckpointReader &cr)
{
    csb_assert(frames_.empty(),
               "memory checkpoint restore requires empty memory");
    const std::uint64_t count = cr.getU64();
    for (std::uint64_t i = 0; i < count; ++i) {
        Addr base = cr.getU64();
        std::vector<std::uint8_t> bytes = cr.getBytes();
        if (bytes.size() != frameSize)
            csb_fatal("checkpoint memory frame at 0x", std::hex, base,
                      std::dec, " has ", bytes.size(), " bytes, want ",
                      frameSize);
        write(base, bytes.data(), bytes.size());
    }
}

} // namespace csb::mem
