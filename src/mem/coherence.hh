/**
 * @file
 * Cache-coherence policies for the snooping bus (docs/ARCHITECTURE.md,
 * "Cache coherence").
 *
 * The caches are tag-state-plus-latency models: the functional image
 * lives in PhysicalMemory and stores commit to it in program order,
 * so a coherence protocol here governs two things --
 *
 *  1. timing: whether a cached access hits silently, needs an
 *     upgrade broadcast, or misses to memory / another cache; and
 *  2. the one functional hazard the tag model does have: a dirty
 *     line's write-back payload going stale in flight (see
 *     BusTransaction::snapshotPayload).
 *
 * A CoherencePolicy is a pure transition table over per-line states.
 * MESI is the default; the interface is small enough that MOESI or an
 * update protocol (Dragon) can slot in without touching the caches or
 * the bus.
 */

#ifndef CSB_MEM_COHERENCE_HH
#define CSB_MEM_COHERENCE_HH

#include <cstdint>
#include <memory>

#include "bus/snoop.hh"
#include "sim/types.hh"

namespace csb::mem {

/**
 * Per-line coherence state.  Without a coherence policy only
 * Invalid/Exclusive/Modified occur (plain valid/dirty); Shared exists
 * only when a snooping policy is attached.
 */
enum class LineState : std::uint8_t {
    Invalid = 0,
    Shared = 1,
    Exclusive = 2,
    Modified = 3,
};

const char *lineStateName(LineState state);

/** Which protocol a system runs. */
enum class CoherenceKind : std::uint8_t {
    None = 0, ///< private caches, no snooping (single-core semantics)
    Mesi = 1,
};

const char *coherenceKindName(CoherenceKind kind);

/** Coherence knobs of a SystemConfig. */
struct CoherenceParams
{
    CoherenceKind kind = CoherenceKind::None;
    /**
     * Ticks charged for an upgrade broadcast (write hit on a Shared
     * line): the invalidation round-trip on the snoop path, cheaper
     * than a full miss.
     */
    Tick upgradeLatency = 12;
    /**
     * Fill latency when another cache supplies the line
     * (cache-to-cache intervention) on the fixed-latency miss path;
     * bus-routed misses keep the bus's own timing (the demand
     * write-back models the owner's extra traffic there).
     */
    Tick cacheToCacheLatency = 30;

    void validate() const;
};

/** What a snooped cache holding a line must do about a probe. */
struct SnoopAction
{
    LineState next = LineState::Invalid;
    /** Supply the line cache-to-cache (owner intervention). */
    bool supply = false;
    /** Demand-write-back the dirty copy before downgrading. */
    bool writeback = false;
};

/**
 * A snooping coherence protocol as a pure transition table.
 * Implementations must be stateless and thread-compatible: one
 * instance may serve every hierarchy of a system.
 */
class CoherencePolicy
{
  public:
    virtual ~CoherencePolicy() = default;

    virtual const char *name() const = 0;

    /**
     * State a line fills to after a miss, given whether the probe
     * found a copy in another cache (@p others_had_copy reflects the
     * state *after* the probe: a ReadExclusive probe invalidates the
     * copies it finds).
     */
    virtual LineState fillState(bool is_write,
                                bool others_had_copy) const = 0;

    /** A local write hit on @p cur needs an upgrade broadcast first. */
    virtual bool writeNeedsUpgrade(LineState cur) const = 0;

    /**
     * Reaction of a cache holding @p cur to an observed probe.  Must
     * be total: even cells an invariant-respecting run never reaches
     * (e.g. Modified observing an Upgrade) get a safe reaction, so a
     * protocol bug degrades instead of corrupting.
     */
    virtual SnoopAction snoop(LineState cur,
                              bus::SnoopKind kind) const = 0;
};

/** The default protocol: Modified / Exclusive / Shared / Invalid. */
class MesiPolicy final : public CoherencePolicy
{
  public:
    const char *name() const override { return "mesi"; }
    LineState fillState(bool is_write,
                        bool others_had_copy) const override;
    bool writeNeedsUpgrade(LineState cur) const override;
    SnoopAction snoop(LineState cur, bus::SnoopKind kind) const override;
};

/** Build the policy for @p kind; null for CoherenceKind::None. */
std::unique_ptr<CoherencePolicy> makeCoherencePolicy(CoherenceKind kind);

} // namespace csb::mem

#endif // CSB_MEM_COHERENCE_HH
