#include "page_table.hh"

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace csb::mem {

const char *
pageAttrName(PageAttr attr)
{
    switch (attr) {
      case PageAttr::Cached: return "cached";
      case PageAttr::Uncached: return "uncached";
      case PageAttr::UncachedAccelerated: return "uncached-accelerated";
      case PageAttr::UncachedCombining: return "uncached-combining";
    }
    return "?";
}

void
PageTable::setAttr(Addr base, Addr size, PageAttr attr)
{
    csb_assert(size > 0, "empty attribute range");
    Addr first = roundDown(base, pageSize);
    Addr last = roundDown(base + size - 1, pageSize);
    for (Addr page = first; page <= last; page += pageSize)
        pages_[page] = attr;
}

PageAttr
PageTable::attrOf(Addr addr) const
{
    auto it = pages_.find(roundDown(addr, pageSize));
    return it == pages_.end() ? PageAttr::Cached : it->second;
}

Tlb::Tlb(const PageTable &page_table, unsigned entries, Tick miss_penalty,
         std::string name, sim::stats::StatGroup *stat_parent)
    : sim::stats::StatGroup(std::move(name), stat_parent),
      hits(this, "hits", "TLB hits"),
      misses(this, "misses", "TLB misses"),
      pageTable_(page_table), entries_(entries),
      missPenalty_(miss_penalty)
{
    csb_assert(entries > 0, "TLB needs at least one entry");
}

PageAttr
Tlb::translate(Addr addr, ProcId asid, Tick &penalty)
{
    Addr vpn = addr / PageTable::pageSize;
    ++useClock_;

    for (Entry &entry : entries_) {
        if (entry.valid && entry.vpn == vpn && entry.asid == asid) {
            entry.lastUse = useClock_;
            ++hits;
            penalty = 0;
            return entry.attr;
        }
    }

    // Miss: refill over the LRU (or first invalid) entry.
    ++misses;
    Entry *victim = &entries_[0];
    for (Entry &entry : entries_) {
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lastUse < victim->lastUse)
            victim = &entry;
    }
    victim->vpn = vpn;
    victim->asid = asid;
    victim->attr = pageTable_.attrOf(addr);
    victim->lastUse = useClock_;
    victim->valid = true;
    penalty = missPenalty_;
    return victim->attr;
}

void
Tlb::flush()
{
    for (Entry &entry : entries_)
        entry.valid = false;
}

void
Tlb::checkpointSave(sim::CheckpointWriter &cw) const
{
    cw.putU64(useClock_);
    cw.putU64(entries_.size());
    for (const Entry &entry : entries_) {
        cw.putU64(entry.vpn);
        cw.putU32(entry.asid);
        cw.putU8(static_cast<std::uint8_t>(entry.attr));
        cw.putU64(entry.lastUse);
        cw.putU8(entry.valid ? 1 : 0);
    }
}

void
Tlb::checkpointRestore(sim::CheckpointReader &cr)
{
    useClock_ = cr.getU64();
    const std::uint64_t count = cr.getU64();
    if (count != entries_.size())
        csb_fatal("checkpoint TLB has ", count, " entries, this TLB has ",
                  entries_.size());
    for (Entry &entry : entries_) {
        entry.vpn = cr.getU64();
        entry.asid = static_cast<ProcId>(cr.getU32());
        entry.attr = static_cast<PageAttr>(cr.getU8());
        entry.lastUse = cr.getU64();
        entry.valid = cr.getU8() != 0;
    }
}

} // namespace csb::mem
