/**
 * @file
 * The uncached buffer: a FIFO between the core's retire stage and the
 * system bus that handles ordinary uncached loads and stores.
 *
 * In its simplest form it queues each access and issues one bus
 * transaction per access.  When a combining block size is configured
 * (the R10000-style "uncached accelerated" mode) a store may coalesce
 * into the youngest entry if its address falls into the same block
 * and it would not bypass an earlier load; coalescing into the
 * youngest entry only can never reorder accesses.  Combining is
 * limited by the time an entry spends waiting: once the entry's first
 * transaction is presented to the system interface, the entry locks
 * and its valid bytes are split into naturally aligned power-of-two
 * transactions (see decompose.hh).
 *
 * All transactions issued by this buffer are strongly ordered.
 */

#ifndef CSB_MEM_UNCACHED_BUFFER_HH
#define CSB_MEM_UNCACHED_BUFFER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "bus/retry.hh"
#include "bus/system_bus.hh"
#include "decompose.hh"
#include "sim/clocked.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace csb::mem {

/** How stores may coalesce into an open entry. */
enum class CombinePolicy : std::uint8_t
{
    /**
     * Any store into the open entry's block merges (this model's
     * default, the best-case hardware buffer).
     */
    Block,
    /**
     * R10000-style: a store merges only when it extends the entry at
     * exactly the next sequential address, and an entry issues as a
     * single burst only when the entire block was combined -- partial
     * blocks issue one single-beat transaction per store (paper
     * section 6: "This design is limited to strictly sequential
     * access patterns").
     */
    SequentialOnly,
};

/** Configuration of the uncached buffer. */
struct UncachedBufferParams
{
    /** Queue depth in entries. */
    unsigned entries = 8;
    /**
     * Combining block size in bytes (16/32/64/128); 0 disables
     * combining entirely so every store issues its own transaction.
     */
    unsigned combineBytes = 0;
    /** Coalescing rule for the open entry. */
    CombinePolicy policy = CombinePolicy::Block;
    /** Backoff schedule for transactions NACKed on the bus. */
    bus::RetryPolicy retry;

    void validate() const;
};

/** Callback delivering uncached load data. */
using UncachedLoadCallback =
    std::function<void(Tick completion_tick,
                       const std::vector<std::uint8_t> &data)>;

/**
 * FIFO buffer for uncached loads and stores with optional combining.
 */
class UncachedBuffer : public sim::Clocked, public sim::stats::StatGroup
{
  public:
    UncachedBuffer(sim::Simulator &simulator, bus::SystemBus &bus,
                   const UncachedBufferParams &params,
                   std::string name = "ubuf",
                   sim::stats::StatGroup *stat_parent = nullptr);

    /** @return true when a store can be pushed this cycle. */
    bool canAcceptStore(Addr addr, unsigned size) const;

    /** @return true when a load can be pushed this cycle. */
    bool canAcceptLoad() const;

    /**
     * Push an uncached store (called at retire).
     * @pre canAcceptStore(addr, size)
     */
    void pushStore(Addr addr, unsigned size, const void *data);

    /**
     * Push an uncached load (called at retire).  The callback fires
     * when the bus read response completes.
     * @pre canAcceptLoad()
     */
    void pushLoad(Addr addr, unsigned size, UncachedLoadCallback done);

    /**
     * @return true when no access is buffered or in flight -- the
     * condition a MEMBAR (and therefore a lock release) waits for.
     */
    bool empty() const;

    /** Number of queued entries (tests / debugging). */
    std::size_t depth() const { return entries_.size(); }

    void tick() override;

    void debugDump(std::ostream &os) const override;

    const UncachedBufferParams &params() const { return params_; }

    sim::stats::Scalar storesPushed;
    sim::stats::Scalar loadsPushed;
    sim::stats::Scalar storesCoalesced;
    sim::stats::Scalar entriesCreated;
    sim::stats::Scalar txnsIssued;
    /** Transactions NACKed on the bus. */
    sim::stats::Scalar busNacks;
    /** NACKed transactions reissued after backoff. */
    sim::stats::Scalar busRetries;
    sim::stats::Distribution entryOccupancy;

  private:
    enum class Kind : std::uint8_t { Store, Load };

    struct Entry
    {
        Kind kind = Kind::Store;
        /** Block-aligned base (stores) or access address (loads). */
        Addr addr = 0;
        unsigned size = 0; // loads only
        ValidMask valid;
        std::array<std::uint8_t, maxBlockBytes> data{};
        /** Locked once the first transaction was presented. */
        bool locked = false;
        /** Address one past the last coalesced store (sequential). */
        Addr lastStoreEnd = 0;
        /** Individual (offset, size) stores, for SequentialOnly. */
        std::vector<std::pair<unsigned, unsigned>> pieces;
        /** Remaining decomposed chunks (locked stores only). */
        std::deque<Chunk> chunks;
        /** A presented transaction has not started yet. */
        bool presentPending = false;
        UncachedLoadCallback loadDone;
        /** Number of stores coalesced into this entry. */
        unsigned storeCount = 0;
    };

    /** A NACKed transaction waiting out its backoff. */
    struct PendingRetry
    {
        bool isWrite = true;
        Addr addr = 0;
        unsigned size = 0;
        std::vector<std::uint8_t> data; // writes only
        UncachedLoadCallback loadDone;  // loads only
        unsigned attempt = 0;
        Tick earliest = 0;
    };

    /** Block size used for new store entries. */
    unsigned blockBytes() const;
    unsigned maxTxnBytes() const;

    /** @return true when a store may merge into the open tail entry. */
    bool canCoalesceInto(const Entry &tail, Addr addr,
                         unsigned size) const;

    void presentHeadStore();
    void presentHeadLoad();
    void issueRetry(PendingRetry redo);

    /** Shared write-completion handling (first issue and retries). */
    void handleWriteStatus(Addr addr, std::vector<std::uint8_t> keep,
                           unsigned attempt, Tick when,
                           bus::BusStatus status);
    /** Shared read-completion handling (first issue and retries). */
    void handleReadStatus(Addr addr, unsigned size,
                          UncachedLoadCallback done, unsigned attempt,
                          Tick when, bus::BusStatus status,
                          const std::vector<std::uint8_t> &data);

    sim::Simulator &sim_;
    bus::SystemBus &bus_;
    UncachedBufferParams params_;
    MasterId masterId_;
    std::deque<Entry> entries_;
    /**
     * NACKed transactions awaiting reissue; serviced strictly before
     * entries_ so the port's access order is preserved.
     */
    std::deque<PendingRetry> retries_;
    /** A reissued retry has been presented but not started. */
    bool retryPresentPending_ = false;
    /** Write transactions started but not completed. */
    unsigned inflightStores_ = 0;
    /** Read transactions started but not completed. */
    unsigned inflightLoads_ = 0;
};

} // namespace csb::mem

#endif // CSB_MEM_UNCACHED_BUFFER_HH
