/**
 * @file
 * Architectural (committed) register state of one hardware context.
 */

#ifndef CSB_CPU_ARCH_STATE_HH
#define CSB_CPU_ARCH_STATE_HH

#include <array>
#include <bit>
#include <cstdint>

#include "isa/instruction.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace csb::cpu {

/**
 * Committed register file, program counter and process ID of one
 * context.  All register values are raw 64-bit containers; FP values
 * are IEEE-754 doubles stored bit-exactly.
 */
struct ArchState
{
    std::array<std::uint64_t, isa::numIntRegs> intRegs{};
    std::array<std::uint64_t, isa::numFpRegs> fpRegs{};
    /** PC as an instruction index into the running Program. */
    std::uint64_t pc = 0;
    /** Process ID, available to the CSB (privileged register). */
    ProcId pid = 0;
    bool halted = false;

    std::uint64_t
    readReg(isa::RegId reg) const
    {
        // Absent operands (e.g. the rs1 of LI) read as zero, matching
        // the pipeline's operand capture.
        if (!reg.valid() || reg.isZero())
            return 0;
        if (reg.isInt())
            return intRegs[reg.idx];
        return fpRegs[reg.idx];
    }

    void
    writeReg(isa::RegId reg, std::uint64_t value)
    {
        if (!reg.valid() || reg.isZero())
            return;
        if (reg.isInt()) {
            intRegs[reg.idx] = value;
        } else {
            fpRegs[reg.idx] = value;
        }
    }
};

/**
 * Pure functional evaluation of an ALU operation.
 *
 * Defined inline so the translated fast path (cpu/translator.hh) can
 * instantiate it with a compile-time opcode: the switch folds away and
 * each micro-op handler becomes straight-line code, while the
 * interpreter, the core and the reference executor keep calling it
 * with a runtime opcode.  One definition serves every execution
 * engine -- the differential tests depend on that.
 *
 * @param op  the opcode (must be an IntAlu or FpAlu class op)
 * @param a   first source value (raw bits)
 * @param b   second source value or immediate (raw bits)
 * @return result bits
 */
inline std::uint64_t
evalAlu(isa::Opcode op, std::uint64_t a, std::uint64_t b)
{
    using isa::Opcode;
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    auto asDouble = [](std::uint64_t bits) {
        return std::bit_cast<double>(bits);
    };
    auto asBits = [](double value) {
        return std::bit_cast<std::uint64_t>(value);
    };
    switch (op) {
      case Opcode::Add:
      case Opcode::Addi:
        return a + b;
      case Opcode::Sub:
        return a - b;
      case Opcode::And:
      case Opcode::Andi:
        return a & b;
      case Opcode::Or:
      case Opcode::Ori:
        return a | b;
      case Opcode::Xor:
      case Opcode::Xori:
        return a ^ b;
      case Opcode::Sll:
      case Opcode::Slli:
        return a << (b & 63);
      case Opcode::Srl:
      case Opcode::Srli:
        return a >> (b & 63);
      case Opcode::Sra:
        return static_cast<std::uint64_t>(sa >> (b & 63));
      case Opcode::Mul:
        return a * b;
      case Opcode::Slt:
      case Opcode::Slti:
        return sa < sb ? 1 : 0;
      case Opcode::Sltu:
        return a < b ? 1 : 0;
      case Opcode::Li:
        return b;
      case Opcode::Fadd:
        return asBits(asDouble(a) + asDouble(b));
      case Opcode::Fsub:
        return asBits(asDouble(a) - asDouble(b));
      case Opcode::Fmul:
        return asBits(asDouble(a) * asDouble(b));
      case Opcode::Fmov:
      case Opcode::Mvi2f:
      case Opcode::Mvf2i:
        return a;
      case Opcode::Fitod:
        return asBits(static_cast<double>(sa));
      default:
        csb_panic("evalAlu: non-ALU opcode ", isa::mnemonic(op));
    }
}

/**
 * Evaluate a branch condition.  Inline for the same reason as
 * evalAlu(): the translator instantiates it per opcode.
 * @return true when the branch is taken
 */
inline bool
evalBranch(isa::Opcode op, std::uint64_t a, std::uint64_t b)
{
    using isa::Opcode;
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    switch (op) {
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Ble: return sa <= sb;
      case Opcode::Bgt: return sa > sb;
      case Opcode::Blt: return sa < sb;
      case Opcode::Bge: return sa >= sb;
      case Opcode::Jmp: return true;
      default:
        csb_panic("evalBranch: non-branch opcode ", isa::mnemonic(op));
    }
}

} // namespace csb::cpu

#endif // CSB_CPU_ARCH_STATE_HH
