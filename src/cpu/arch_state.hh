/**
 * @file
 * Architectural (committed) register state of one hardware context.
 */

#ifndef CSB_CPU_ARCH_STATE_HH
#define CSB_CPU_ARCH_STATE_HH

#include <array>
#include <cstdint>

#include "isa/instruction.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace csb::cpu {

/**
 * Committed register file, program counter and process ID of one
 * context.  All register values are raw 64-bit containers; FP values
 * are IEEE-754 doubles stored bit-exactly.
 */
struct ArchState
{
    std::array<std::uint64_t, isa::numIntRegs> intRegs{};
    std::array<std::uint64_t, isa::numFpRegs> fpRegs{};
    /** PC as an instruction index into the running Program. */
    std::uint64_t pc = 0;
    /** Process ID, available to the CSB (privileged register). */
    ProcId pid = 0;
    bool halted = false;

    std::uint64_t
    readReg(isa::RegId reg) const
    {
        // Absent operands (e.g. the rs1 of LI) read as zero, matching
        // the pipeline's operand capture.
        if (!reg.valid() || reg.isZero())
            return 0;
        if (reg.isInt())
            return intRegs[reg.idx];
        return fpRegs[reg.idx];
    }

    void
    writeReg(isa::RegId reg, std::uint64_t value)
    {
        if (!reg.valid() || reg.isZero())
            return;
        if (reg.isInt()) {
            intRegs[reg.idx] = value;
        } else {
            fpRegs[reg.idx] = value;
        }
    }
};

/**
 * Pure functional evaluation of an ALU operation.
 * @param op  the opcode (must be an IntAlu or FpAlu class op)
 * @param a   first source value (raw bits)
 * @param b   second source value or immediate (raw bits)
 * @return result bits
 */
std::uint64_t evalAlu(isa::Opcode op, std::uint64_t a, std::uint64_t b);

/**
 * Evaluate a branch condition.
 * @return true when the branch is taken
 */
bool evalBranch(isa::Opcode op, std::uint64_t a, std::uint64_t b);

} // namespace csb::cpu

#endif // CSB_CPU_ARCH_STATE_HH
