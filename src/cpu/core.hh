/**
 * @file
 * Dynamically scheduled processor core (RSIM-flavoured).
 *
 * The microarchitecture follows the paper's section 4.1:
 *  - unified dispatch queue (window) tracking true data dependencies;
 *  - up to fetchWidth instructions dispatched and retireWidth retired
 *    per cycle, issue to 2 integer + 2 FP units and a memory port;
 *  - out-of-order issue, in-order commit;
 *  - cached loads execute speculatively with store-forwarding checks;
 *  - uncached operations are non-speculative: they take effect at the
 *    head of the reorder buffer, at most one per cycle, and route to
 *    the uncached buffer (plain/accelerated space) or the conditional
 *    store buffer (combining space);
 *  - MEMBAR does not graduate until the uncached buffer has drained;
 *  - SWAP is an atomic read-modify-write executed non-speculatively
 *    at the head; in combining space it is the conditional flush.
 *
 * Branch handling: a branch whose operands are available at dispatch
 * is resolved immediately and fetch continues along the (always
 * correct) path; otherwise fetch stalls until the branch executes.
 * This models an aggressive core without mispeculation-recovery
 * machinery; the paper's microbenchmarks contain no data-dependent
 * branches outside lock retry loops, where a stall is the realistic
 * behaviour.
 */

#ifndef CSB_CPU_CORE_HH
#define CSB_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "arch_state.hh"
#include "isa/program.hh"
#include "mem/cache.hh"
#include "mem/csb.hh"
#include "mem/page_table.hh"
#include "mem/physical_memory.hh"
#include "mem/uncached_buffer.hh"
#include "sim/clocked.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/trace_recorder.hh"
#include "translator.hh"

namespace csb::cpu {

/** Core configuration. */
struct CoreParams
{
    unsigned fetchWidth = 4;
    unsigned retireWidth = 4;
    /** Unified dispatch queue / reorder buffer size. */
    unsigned windowSize = 64;
    unsigned intUnits = 2;
    unsigned fpUnits = 2;
    /** Cached-access / address-generation ports per cycle. */
    unsigned memPorts = 2;
    /** Uncached operations retired per cycle (paper: one). */
    unsigned maxUncachedRetirePerCycle = 1;
    Tick intLatency = 1;
    Tick mulLatency = 3;
    Tick fpLatency = 3;
    /** Latency of the conditional flush inside the CSB, in cycles. */
    Tick csbFlushLatency = 2;

    void validate() const;
};

/** Memory-system ports the core talks to. */
struct CoreMemPorts
{
    mem::Tlb *tlb = nullptr;
    mem::CacheHierarchy *caches = nullptr;
    mem::UncachedBuffer *ubuf = nullptr;
    /** May be null: a system without a CSB (baseline configs). */
    mem::ConditionalStoreBuffer *csb = nullptr;
    mem::PhysicalMemory *memory = nullptr;
};

/** A (mark id, retire tick) record written by the MARK instruction. */
using MarkRecord = std::pair<std::int64_t, Tick>;

/**
 * The out-of-order core.  Runs one context at a time; contexts can be
 * saved/restored (with a pipeline squash) for multiprogramming.
 */
class Core : public sim::Clocked, public sim::stats::StatGroup
{
  public:
    Core(sim::Simulator &simulator, const CoreParams &params,
         const CoreMemPorts &ports, std::string name = "cpu",
         sim::stats::StatGroup *stat_parent = nullptr);

    /** Reset the context and start running @p program as @p pid. */
    void loadProgram(const isa::Program *program, ProcId pid);

    /** @return true once a HALT has committed (or nothing is loaded). */
    bool halted() const { return program_ == nullptr || arch_.halted; }

    /** Committed architectural state (for tests and schedulers). */
    const ArchState &archState() const { return arch_; }

    /** Timestamps recorded by committed MARK instructions. */
    const std::vector<MarkRecord> &marks() const { return marks_; }

    /** Retire tick of the first mark with @p id; maxTick when absent. */
    Tick markTime(std::int64_t id) const;

    void clearMarks() { marks_.clear(); }

    /**
     * Request an asynchronous context switch.  The pipeline squashes
     * at the next cycle with no committed-but-unfinished operation in
     * flight; @p on_switched then receives the saved state.
     */
    void requestContextSwitch(
        const isa::Program *next_program, const ArchState &next_state,
        std::function<void(const ArchState &saved)> on_switched);

    /** @return true when a requested switch has not happened yet. */
    bool switchPending() const { return switchPending_; }

    /**
     * Record every data reference this core issues to the memory
     * system into @p recorder, stamped as core @p cpu_index (see
     * docs/TRACE_FORMAT.md for the record catalogue).  Null detaches.
     * Recording is passive: it never changes timing or behaviour.
     */
    void
    setTraceRecorder(sim::TraceRecorder *recorder,
                     std::uint8_t cpu_index = 0)
    {
        traceRec_ = recorder;
        traceCpu_ = cpu_index;
    }

    void tick() override;

    /**
     * Attach the cpu.translate=core-fastforward fast path: whenever
     * the window is empty and the next basic block is at least
     * @p config.fastForwardMinBlock instructions of pure compute, the
     * whole block chain retires architecturally in one tick via the
     * translator instead of flowing through the pipeline.  Memory
     * instructions, SWAP, MEMBAR and Halt always take the pipeline,
     * so the memory-system event stream (bus traffic, CSB commit
     * point, traces, fault sites) is unchanged; only tick counts
     * compress.  This is a documented approximate-timing mode
     * (docs/PERF.md) -- never enabled by default.
     */
    void enableFastForward(const TranslateConfig &config);

    const CoreParams &params() const { return params_; }

    /**
     * Serialize the committed context (registers, pc, pid, marks,
     * sequence counters) at a quiescent boundary: the pipeline must
     * be drained (halted with an empty window).  Stats travel in the
     * owning System's stats section, not here.  See docs/CHECKPOINT.md.
     */
    void checkpointSave(sim::CheckpointWriter &cw) const;

    /** Restore the context written by checkpointSave(). */
    void checkpointRestore(sim::CheckpointReader &cr);

    // Statistics.
    sim::stats::Scalar numCycles;
    sim::stats::Scalar instsRetired;
    sim::stats::Scalar instsDispatched;
    sim::stats::Scalar branchFetchStallCycles;
    sim::stats::Scalar windowFullStallCycles;
    sim::stats::Scalar uncachedRetireStallCycles;
    sim::stats::Scalar membarStallCycles;
    sim::stats::Scalar csbStoreStallCycles;
    sim::stats::Scalar contextSwitches;
    /** Instructions retired via the translated fast-forward path. */
    sim::stats::Scalar instsFastForwarded;
    /** Consecutive cycles an uncached store waited before retiring. */
    sim::stats::Distribution uncachedStallRuns;
    sim::stats::Formula ipc;

  private:
    enum class State : std::uint8_t { Dispatched, Issued, Done };

    struct DynInst
    {
        std::uint64_t seq = 0;
        std::uint64_t pc = 0;
        isa::Instruction inst;
        State state = State::Dispatched;
        Tick dispatchTick = 0;

        // Operand tracking.  producer == 0 means the value is in valN.
        std::uint64_t src1Producer = 0;
        std::uint64_t src2Producer = 0;
        std::uint64_t src1Val = 0;
        std::uint64_t src2Val = 0;

        std::uint64_t result = 0;

        // Memory state.
        Addr effAddr = 0;
        bool addrKnown = false;
        mem::PageAttr attr = mem::PageAttr::Cached;
        unsigned size = 0;

        // Branch resolution.
        bool resolved = false;
        bool taken = false;

        /** Non-speculative head operation already started. */
        bool headOpStarted = false;
    };

    // Pipeline stages (called in this order each cycle).
    void retireStage();
    void issueStage();
    void fetchStage();

    /** Drained-window translated fast-forward (enableFastForward). */
    void fastForward();

    // Commit helpers; return false when the head cannot commit yet.
    bool commitHead(unsigned &uncached_retired);
    bool commitStore(DynInst &head, unsigned &uncached_retired);
    void startHeadSwap(DynInst &head);
    void startHeadUncachedLoad(DynInst &head);

    /** Mark @p inst executed: write back, wake consumers, unstall. */
    void finishInst(DynInst &inst, std::uint64_t result);

    /** Look up an in-flight instruction by sequence number. */
    DynInst *findBySeq(std::uint64_t seq);

    /** Capture a source operand at dispatch. */
    void captureOperand(const isa::RegId &reg, std::uint64_t &producer,
                        std::uint64_t &value);

    /** @return source registers of @p inst as (src1, src2). */
    static std::pair<isa::RegId, isa::RegId>
    sourcesOf(const isa::Instruction &inst);

    /** @return destination register (or noReg). */
    static isa::RegId destOf(const isa::Instruction &inst);

    bool operandsReady(const DynInst &inst) const;

    /** Append one reference to the attached trace recorder, if any. */
    void recordRef(sim::TraceOp op, Addr addr, unsigned size,
                   std::uint64_t value, mem::PageAttr attr,
                   std::uint8_t flags = 0);

    /** True when an older store blocks this load (unknown/overlap). */
    bool loadBlockedByStore(const DynInst &load, std::uint64_t &fwd_val,
                            bool &can_forward) const;

    void doSquashAndSwitch();

    sim::Simulator &sim_;
    CoreParams params_;
    CoreMemPorts ports_;

    const isa::Program *program_ = nullptr;
    ArchState arch_;

    /** Speculative register values (latest writeback). */
    ArchState spec_;

    std::deque<DynInst> window_;
    std::uint64_t nextSeq_ = 1;

    /** Latest in-flight writer of each register, by sequence. */
    std::unordered_map<std::uint32_t, std::uint64_t> lastWriter_;

    std::uint64_t fetchPc_ = 0;
    bool fetchHalted_ = true;
    /** Length of the current uncached-store retire-stall streak. */
    unsigned uncachedStallRun_ = 0;
    /** Non-zero: fetch waits for this branch to execute. */
    std::uint64_t fetchStallSeq_ = 0;

    std::vector<MarkRecord> marks_;

    // Context switching.
    bool switchPending_ = false;
    const isa::Program *nextProgram_ = nullptr;
    ArchState nextState_;
    std::function<void(const ArchState &)> onSwitched_;
    /** Bumped on every squash; stale callbacks check it. */
    std::uint64_t epoch_ = 0;

    /** Optional trace capture sink (not owned); null when detached. */
    sim::TraceRecorder *traceRec_ = nullptr;
    std::uint8_t traceCpu_ = 0;

    // Translated fast-forward (null unless enableFastForward ran).
    std::unique_ptr<Translator> ffTranslator_;
    unsigned ffInstsPerTick_ = 256;
    unsigned ffMinBlock_ = 8;

    static std::uint32_t regKey(const isa::RegId &reg);
};

} // namespace csb::cpu

#endif // CSB_CPU_CORE_HH
