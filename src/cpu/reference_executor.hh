/**
 * @file
 * Multi-context sequential-consistency reference executor.
 *
 * Runs each registered context's program to completion, strictly
 * sequentially and one context after another, against a functional
 * model of the memory system: cached space is a flat byte store,
 * uncached space is an ordered write stream folded into a byte image
 * (device reads return zero, matching a BurstDevice with no registers
 * programmed), and uncached-combining space hits a functional
 * conditional store buffer with the paper's combine/flush rules.
 *
 * This is the oracle of the litmus harness (docs/LITMUS.md) and of
 * tests/cpu/test_differential: by the store-buffer reduction theorem
 * (Cohen & Schirmer, PAPERS.md), any program whose contexts touch
 * disjoint data must produce exactly this final state on the full
 * cycle model, no matter how the pipeline, the uncached buffer, the
 * CSB, preemption or bus faults reorder the execution.  The
 * interleaving chosen here (context 0 to completion, then context 1,
 * ...) is therefore canonical, not arbitrary.
 */

#ifndef CSB_CPU_REFERENCE_EXECUTOR_HH
#define CSB_CPU_REFERENCE_EXECUTOR_HH

#include <cstdint>
#include <map>
#include <vector>

#include "arch_state.hh"
#include "isa/program.hh"
#include "mem/page_table.hh"
#include "mem/physical_memory.hh"

namespace csb::cpu {

/** One uncached (non-combining) write as the reference emits it. */
struct RefIoWrite
{
    Addr addr = 0;
    unsigned size = 0;
    std::uint64_t data = 0;

    bool operator==(const RefIoWrite &) const = default;
};

/** Functional-CSB knobs that change the observable device image. */
struct RefCsbModel
{
    /** Combining granularity; must match the cycle model's. */
    unsigned lineBytes = 64;
    /** Flush conflict check includes the line address. */
    bool checkAddress = true;
    /**
     * Successful flushes emit only the valid bytes instead of a
     * zero-padded full line (CsbParams::partialFlush).
     */
    bool partialFlush = false;
};

/** Sequential reference executor over any number of contexts. */
class ReferenceExecutor
{
  public:
    explicit ReferenceExecutor(RefCsbModel csb = RefCsbModel());

    /**
     * Page-attribute routing; defaults to all-Cached.  Configure
     * before run() (e.g. replicate core::System's I/O window layout).
     */
    mem::PageTable &pageTable() { return pageTable_; }

    /**
     * Register a context.  @p csb_unit selects which functional CSB
     * its combining traffic uses: one unit per core in an SMP setup,
     * all contexts on unit 0 under a time-sharing scheduler.
     */
    void addContext(const isa::Program *program, ProcId pid,
                    unsigned csb_unit = 0);

    /**
     * Run every context to completion, in registration order.  Throws
     * FatalError when a context exceeds @p max_steps_per_context --
     * the generator only emits terminating programs, so hitting the
     * cap means the program (or this model) is broken.
     */
    void run(std::uint64_t max_steps_per_context = 1'000'000);

    /**
     * Use the basic-block translated fast path (cpu/translator.hh)
     * between memory-system events.  Purely an oracle speedup: final
     * states, marks, images, write streams, flush accounting and the
     * runaway-cap step accounting are bit-identical either way.
     */
    void setTranslate(bool on) { translate_ = on; }

    std::size_t numContexts() const { return contexts_.size(); }

    /** Final architectural state of context @p ctx (after run()). */
    const ArchState &
    state(std::size_t ctx) const
    {
        return contexts_.at(ctx).state;
    }

    /** The cached (RAM) space. */
    mem::PhysicalMemory &memory() { return memory_; }

    /**
     * Folded byte image of everything written to uncached space:
     * plain/accelerated stores and swaps plus flushed CSB lines.
     * Compare against the cycle model's device write log folded the
     * same way.
     */
    const std::map<Addr, std::uint8_t> &ioImage() const { return ioImage_; }

    /**
     * Ordered non-combining uncached writes of context @p ctx.  Under
     * a non-combining uncached buffer these reach the device in
     * exactly this per-context order (MEMBAR adds nothing the
     * sequential model does not already guarantee).
     */
    const std::vector<RefIoWrite> &
    ioWrites(std::size_t ctx) const
    {
        return contexts_.at(ctx).ioWrites;
    }

    /** Successful conditional flushes charged to CSB @p unit. */
    std::uint64_t csbFlushesSucceeded(unsigned unit) const;

    /** Mark ids recorded by context @p ctx, in commit order. */
    const std::vector<std::int64_t> &
    marks(std::size_t ctx) const
    {
        return contexts_.at(ctx).marks;
    }

  private:
    /** Functional CSB accumulator (the paper's combine/flush rules). */
    struct CsbUnit
    {
        std::vector<std::uint8_t> data;
        std::vector<bool> valid;
        Addr lineAddr = 0;
        ProcId pid = 0;
        std::uint64_t hitCounter = 0;
        std::uint64_t flushesSucceeded = 0;
    };

    struct Context
    {
        const isa::Program *program = nullptr;
        ArchState state;
        unsigned csbUnit = 0;
        std::vector<RefIoWrite> ioWrites;
        std::vector<std::int64_t> marks;
    };

    void runContext(Context &ctx, std::uint64_t max_steps);
    void csbStore(CsbUnit &unit, ProcId pid, Addr addr, unsigned size,
                  std::uint64_t bits);
    bool csbFlush(CsbUnit &unit, ProcId pid, Addr addr,
                  std::uint64_t expected);
    void foldIoWrite(Context &ctx, Addr addr, unsigned size,
                     std::uint64_t bits);

    RefCsbModel csbModel_;
    bool translate_ = false;
    mem::PageTable pageTable_;
    mem::PhysicalMemory memory_;
    std::map<Addr, std::uint8_t> ioImage_;
    std::vector<CsbUnit> units_;
    std::vector<Context> contexts_;
};

} // namespace csb::cpu

#endif // CSB_CPU_REFERENCE_EXECUTOR_HH
