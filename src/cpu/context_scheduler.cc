#include "context_scheduler.hh"

namespace csb::cpu {

ContextScheduler::ContextScheduler(sim::Simulator &simulator, Core &core,
                                   Tick quantum, std::string name,
                                   sim::stats::StatGroup *stat_parent)
    : sim::Clocked(name, sim::ClockDomain(1), /*eval_order=*/5),
      sim::stats::StatGroup(name, stat_parent),
      preemptions(this, "preemptions", "forced context switches"),
      sim_(simulator), core_(core), quantum_(quantum)
{
    csb_assert(quantum > 0, "scheduler quantum must be positive");
    simulator.registerClocked(this);
}

void
ContextScheduler::addProcess(const isa::Program *program, ProcId pid)
{
    csb_assert(!started_, "cannot add processes after start()");
    Process proc;
    proc.program = program;
    proc.state.pid = pid;
    processes_.push_back(proc);
}

void
ContextScheduler::start()
{
    csb_assert(!processes_.empty(), "no processes to schedule");
    started_ = true;
    current_ = 0;
    sliceStart_ = sim_.curTick();
    core_.loadProgram(processes_[0].program, processes_[0].state.pid);
}

bool
ContextScheduler::allFinished() const
{
    if (!started_)
        return false;
    for (std::size_t i = 0; i < processes_.size(); ++i) {
        if (static_cast<int>(i) == current_)
            continue;
        if (!processes_[i].finished)
            return false;
    }
    return core_.halted();
}

const ArchState &
ContextScheduler::finalState(std::size_t index) const
{
    csb_assert(index < processes_.size(), "bad process index");
    if (static_cast<int>(index) == current_)
        return core_.archState();
    return processes_[index].state;
}

int
ContextScheduler::nextRunnable(int from) const
{
    int n = static_cast<int>(processes_.size());
    for (int step = 1; step <= n; ++step) {
        int idx = (from + step) % n;
        if (idx != current_ && !processes_[idx].finished)
            return idx;
    }
    return -1;
}

void
ContextScheduler::switchTo(int index)
{
    int previous = current_;
    current_ = index;
    sliceStart_ = sim_.curTick();
    core_.requestContextSwitch(
        processes_[index].program, processes_[index].state,
        [this, previous](const ArchState &saved) {
            processes_[previous].state = saved;
            processes_[previous].finished = saved.halted;
        });
    preemptions += 1;
}

void
ContextScheduler::tick()
{
    if (!started_ || core_.switchPending())
        return;

    Tick now = sim_.curTick();
    bool quantum_over = now - sliceStart_ >= quantum_;
    bool current_halted = core_.halted();
    if (!quantum_over && !current_halted)
        return;

    int next = nextRunnable(current_);
    if (next < 0) {
        // Nothing else runnable; extend the current slice.
        sliceStart_ = now;
        return;
    }
    if (current_halted || quantum_over)
        switchTo(next);
}

} // namespace csb::cpu
