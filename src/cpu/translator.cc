#include "translator.hh"

#include <cstddef>

#include "sim/logging.hh"

namespace csb::cpu {

using isa::InstClass;
using isa::Opcode;

const char *
translateModeName(TranslateMode mode)
{
    switch (mode) {
      case TranslateMode::Off: return "off";
      case TranslateMode::Interpreter: return "interpreter";
      case TranslateMode::CoreFastForward: return "core-fastforward";
    }
    return "?";
}

TranslateMode
parseTranslateMode(const std::string &text)
{
    if (text == "off")
        return TranslateMode::Off;
    if (text == "interpreter")
        return TranslateMode::Interpreter;
    if (text == "core-fastforward")
        return TranslateMode::CoreFastForward;
    csb_fatal("unknown cpu.translate mode '", text,
              "' (off|interpreter|core-fastforward)");
}

void
TranslateConfig::validate() const
{
    if (translate == TranslateMode::Off)
        return;
    if (fastForwardInstsPerTick == 0)
        csb_fatal("cpu.fastForwardInstsPerTick must be positive");
    if (fastForwardMinBlock == 0)
        csb_fatal("cpu.fastForwardMinBlock must be positive");
}

namespace {

// Operand access is by precomputed byte offset: ArchState is standard
// layout, and each offset addresses a real uint64_t array element, so
// the char* round trip below is well-defined.
static_assert(std::is_standard_layout_v<ArchState>);

std::uint64_t &
regAt(char *regs, std::uint16_t offset)
{
    return *reinterpret_cast<std::uint64_t *>(regs + offset);
}

/**
 * Byte offset of @p reg's storage.  Absent and hardwired-zero
 * registers resolve to intRegs[0]: it is zero-initialized, and no
 * micro-op ever writes it (writes to r0/noReg are elided at predecode
 * the way ArchState::writeReg drops them), so reading it always
 * yields 0 -- exactly ArchState::readReg's contract.
 */
std::uint16_t
regOffset(isa::RegId reg)
{
    if (!reg.valid() || reg.isZero())
        return std::uint16_t(offsetof(ArchState, intRegs));
    std::size_t base = reg.isInt() ? offsetof(ArchState, intRegs)
                                   : offsetof(ArchState, fpRegs);
    return std::uint16_t(base + sizeof(std::uint64_t) * reg.idx);
}

// --- Micro-op handlers.  Each is instantiated per opcode, so the
// --- evalAlu/evalBranch switch folds to the single matching case and
// --- the handler body is straight-line code.

template <Opcode Op, bool Imm>
const Translator::MicroOp *
aluStep(const Translator::MicroOp *op, char *regs,
        Translator::Frame &)
{
    std::uint64_t a = regAt(regs, op->srcA);
    std::uint64_t b = Imm ? static_cast<std::uint64_t>(op->imm)
                          : regAt(regs, op->srcB);
    regAt(regs, op->dst) = evalAlu(Op, a, b);
    return op + 1;
}

template <Opcode Op>
const Translator::MicroOp *
branchStep(const Translator::MicroOp *op, char *regs,
           Translator::Frame &frame)
{
    bool taken = evalBranch(Op, regAt(regs, op->srcA),
                            regAt(regs, op->srcB));
    frame.state.pc = taken ? op->targetPc : op->fallthroughPc;
    return nullptr;
}

const Translator::MicroOp *
markStep(const Translator::MicroOp *op, char *,
         Translator::Frame &frame)
{
    frame.marks.push_back(op->imm);
    return op + 1;
}

/** Block end without a branch: park the pc on the boundary. */
const Translator::MicroOp *
endStep(const Translator::MicroOp *op, char *,
        Translator::Frame &frame)
{
    frame.state.pc = op->fallthroughPc;
    return nullptr;
}

Translator::OpFn
pickAlu(Opcode op, bool imm)
{
#define CSB_ALU_CASE(OP)                                               \
    case Opcode::OP:                                                   \
        return imm ? &aluStep<Opcode::OP, true>                        \
                   : &aluStep<Opcode::OP, false>
    switch (op) {
      CSB_ALU_CASE(Add);
      CSB_ALU_CASE(Sub);
      CSB_ALU_CASE(And);
      CSB_ALU_CASE(Or);
      CSB_ALU_CASE(Xor);
      CSB_ALU_CASE(Sll);
      CSB_ALU_CASE(Srl);
      CSB_ALU_CASE(Sra);
      CSB_ALU_CASE(Mul);
      CSB_ALU_CASE(Slt);
      CSB_ALU_CASE(Sltu);
      CSB_ALU_CASE(Addi);
      CSB_ALU_CASE(Andi);
      CSB_ALU_CASE(Ori);
      CSB_ALU_CASE(Xori);
      CSB_ALU_CASE(Slli);
      CSB_ALU_CASE(Srli);
      CSB_ALU_CASE(Slti);
      CSB_ALU_CASE(Li);
      CSB_ALU_CASE(Fadd);
      CSB_ALU_CASE(Fsub);
      CSB_ALU_CASE(Fmul);
      CSB_ALU_CASE(Fmov);
      CSB_ALU_CASE(Fitod);
      CSB_ALU_CASE(Mvi2f);
      CSB_ALU_CASE(Mvf2i);
      default:
        csb_panic("translator: non-ALU opcode ", isa::mnemonic(op));
    }
#undef CSB_ALU_CASE
}

Translator::OpFn
pickBranch(Opcode op)
{
#define CSB_BR_CASE(OP)                                                \
    case Opcode::OP:                                                   \
        return &branchStep<Opcode::OP>
    switch (op) {
      CSB_BR_CASE(Beq);
      CSB_BR_CASE(Bne);
      CSB_BR_CASE(Ble);
      CSB_BR_CASE(Bgt);
      CSB_BR_CASE(Blt);
      CSB_BR_CASE(Bge);
      CSB_BR_CASE(Jmp);
      default:
        csb_panic("translator: non-branch opcode ", isa::mnemonic(op));
    }
#undef CSB_BR_CASE
}

} // namespace

void
Translator::setProgram(const isa::Program *program)
{
    csb_assert(!program || program->finalized(),
               "translator needs a finalized program");
    program_ = program;
    blocks_.clear();
    if (program_)
        blocks_.resize(program_->size());
}

Translator::Block &
Translator::blockAt(std::uint64_t pc)
{
    Block &block = blocks_[pc];
    if (!block.translated)
        translate(block, pc);
    return block;
}

void
Translator::translate(Block &block, std::uint64_t entry_pc) const
{
    const isa::Instruction *code = program_->code().data();
    const std::uint64_t size = program_->size();

    std::uint64_t pc = entry_pc;
    bool terminated = false;
    while (pc < size && !terminated) {
        const isa::Instruction &inst = code[pc];
        switch (inst.instClass()) {
          case InstClass::Load:
          case InstClass::Store:
          case InstClass::Swap:
          case InstClass::Membar:
          case InstClass::Halt:
            // Boundary: the cycle-level path owns this instruction.
            goto done;

          case InstClass::Branch: {
            MicroOp op;
            op.fn = pickBranch(inst.op);
            op.srcA = regOffset(inst.rs1);
            op.srcB = regOffset(inst.rs2);
            op.targetPc = static_cast<std::uint64_t>(inst.target);
            op.fallthroughPc = pc + 1;
            block.ops.push_back(op);
            terminated = true;
            break;
          }

          case InstClass::Mark: {
            MicroOp op;
            op.fn = &markStep;
            op.imm = inst.imm;
            block.ops.push_back(op);
            break;
          }

          case InstClass::IntAlu:
          case InstClass::FpAlu:
            // An ALU op whose destination is absent or r0 is
            // architecturally a no-op (writeReg drops it; reads have
            // no side effects): elide it, like the Nop below, but
            // still count it in len.
            if (inst.rd.valid() && !inst.rd.isZero()) {
                MicroOp op;
                op.fn = pickAlu(inst.op, !inst.rs2.valid());
                op.dst = regOffset(inst.rd);
                op.srcA = regOffset(inst.rs1);
                op.srcB = regOffset(inst.rs2);
                op.imm = inst.imm;
                block.ops.push_back(op);
            }
            break;

          case InstClass::Nop:
            break;
        }
        ++pc;
        ++block.len;
    }
done:
    if (!terminated) {
        // Ended at a boundary instruction or the program's end: a
        // synthetic terminator parks the pc there for the slow path
        // (which re-raises the interpreter's fell-off-the-program
        // assert if pc == size, exactly as before).
        MicroOp op;
        op.fn = &endStep;
        op.fallthroughPc = pc;
        block.ops.push_back(op);
    }
    block.translated = true;
}

std::uint64_t
Translator::run(ArchState &state, std::uint64_t max_steps,
                std::vector<std::int64_t> &marks)
{
    csb_assert(program_ != nullptr, "translator has no program");
    std::uint64_t steps = 0;
    Frame frame{state, marks};
    char *regs = reinterpret_cast<char *>(&state);
    while (state.pc < blocks_.size()) {
        Block &block = blockAt(state.pc);
        if (block.len == 0 || steps + block.len > max_steps)
            break;
        const MicroOp *op = block.ops.data();
        do {
            op = op->fn(op, regs, frame);
        } while (op);
        steps += block.len;
    }
    return steps;
}

std::uint64_t
Translator::blockLen(std::uint64_t pc)
{
    if (program_ == nullptr || pc >= blocks_.size())
        return 0;
    return blockAt(pc).len;
}

} // namespace csb::cpu
