#include "interpreter.hh"

namespace csb::cpu {

using isa::InstClass;
using isa::Opcode;

ArchState
Interpreter::run(std::uint64_t max_steps)
{
    ArchState state;
    marks_.clear();
    instsExecuted_ = 0;

    while (!state.halted && instsExecuted_ < max_steps) {
        csb_assert(state.pc < program_.size(),
                   "interpreter fell off the program");
        const isa::Instruction &inst = program_.at(state.pc);
        ++instsExecuted_;
        std::uint64_t next_pc = state.pc + 1;

        switch (inst.instClass()) {
          case InstClass::Nop:
            break;
          case InstClass::Halt:
            state.halted = true;
            break;
          case InstClass::Mark:
            marks_.push_back(inst.imm);
            break;
          case InstClass::IntAlu:
          case InstClass::FpAlu: {
            std::uint64_t a = state.readReg(inst.rs1);
            std::uint64_t b = inst.rs2.valid()
                                  ? state.readReg(inst.rs2)
                                  : static_cast<std::uint64_t>(inst.imm);
            state.writeReg(inst.rd, evalAlu(inst.op, a, b));
            break;
          }
          case InstClass::Load: {
            Addr addr = state.readReg(inst.rs1) +
                        static_cast<std::uint64_t>(inst.imm);
            unsigned size = isa::accessSize(inst.op);
            csb_assert(addr % size == 0, "interpreter: misaligned load");
            std::uint64_t bits = 0;
            memory_.read(addr, &bits, size);
            state.writeReg(inst.rd, bits);
            break;
          }
          case InstClass::Store: {
            Addr addr = state.readReg(inst.rs1) +
                        static_cast<std::uint64_t>(inst.imm);
            unsigned size = isa::accessSize(inst.op);
            csb_assert(addr % size == 0, "interpreter: misaligned store");
            std::uint64_t bits = state.readReg(inst.rs2);
            memory_.write(addr, &bits, size);
            break;
          }
          case InstClass::Swap: {
            Addr addr = state.readReg(inst.rs1) +
                        static_cast<std::uint64_t>(inst.imm);
            unsigned size = isa::accessSize(inst.op);
            csb_assert(addr % size == 0, "interpreter: misaligned swap");
            std::uint64_t old = 0;
            memory_.read(addr, &old, size);
            std::uint64_t nv = state.readReg(inst.rd);
            memory_.write(addr, &nv, size);
            state.writeReg(inst.rd, old);
            break;
          }
          case InstClass::Membar:
            // Sequential execution is already strongly ordered.
            break;
          case InstClass::Branch: {
            bool taken = evalBranch(inst.op, state.readReg(inst.rs1),
                                    state.readReg(inst.rs2));
            if (taken)
                next_pc = static_cast<std::uint64_t>(inst.target);
            break;
          }
        }
        state.pc = next_pc;
    }
    return state;
}

} // namespace csb::cpu
