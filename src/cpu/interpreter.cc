#include "interpreter.hh"

namespace csb::cpu {

using isa::InstClass;
using isa::Opcode;

namespace {

/** Append one interpreter-sourced reference record. */
void
recordStep(sim::TraceRecorder *rec, std::uint8_t cpu, Tick step,
           ProcId pid, sim::TraceOp op, Addr addr, unsigned size,
           std::uint64_t value, std::uint8_t extra_flags = 0)
{
    if (!rec)
        return;
    sim::TraceRecord r;
    r.tick = step;
    r.addr = addr;
    r.value = value;
    r.pid = pid;
    r.op = op;
    r.cpu = cpu;
    r.size = std::uint8_t(size);
    r.flags = std::uint8_t(sim::TraceFlagInterpreter | extra_flags);
    rec->append(r);
}

} // namespace

ArchState
Interpreter::run(std::uint64_t max_steps)
{
    // The trace-recorder null test is hoisted out of the hot loop by
    // compiling two loop variants; recordStep calls are guarded with
    // `if constexpr` below, so the untraced loop carries no test at
    // all.
    return traceRec_ ? runLoop<true>(max_steps) : runLoop<false>(max_steps);
}

template <bool HasTrace>
ArchState
Interpreter::runLoop(std::uint64_t max_steps)
{
    ArchState state;
    marks_.clear();
    instsExecuted_ = 0;

    // One bounds-validated raw span instead of a per-step
    // program_.at(): the pc assert below keeps the out-of-range
    // diagnostic, without the extra at() range check per step.
    const isa::Instruction *code = program_.code().data();
    const std::uint64_t size = program_.size();

    while (!state.halted && instsExecuted_ < max_steps) {
        if (translator_) {
            // Fast path: burn through translated blocks until the
            // next block would cross a memory event / Halt or exceed
            // the remaining budget.  Budget accounting is exact, so
            // the max_steps cutoff fires at the same instruction as
            // the slow path's.
            instsExecuted_ += translator_->run(
                state, max_steps - instsExecuted_, marks_);
            if (state.halted || instsExecuted_ >= max_steps)
                break;
            // Fall through: single-step the boundary instruction (or
            // an over-budget block) on the slow path to guarantee
            // progress.
        }
        csb_assert(state.pc < size, "interpreter fell off the program");
        const isa::Instruction &inst = code[state.pc];
        ++instsExecuted_;
        std::uint64_t next_pc = state.pc + 1;

        switch (inst.instClass()) {
          case InstClass::Nop:
            break;
          case InstClass::Halt:
            state.halted = true;
            break;
          case InstClass::Mark:
            marks_.push_back(inst.imm);
            break;
          case InstClass::IntAlu:
          case InstClass::FpAlu: {
            std::uint64_t a = state.readReg(inst.rs1);
            std::uint64_t b = inst.rs2.valid()
                                  ? state.readReg(inst.rs2)
                                  : static_cast<std::uint64_t>(inst.imm);
            state.writeReg(inst.rd, evalAlu(inst.op, a, b));
            break;
          }
          case InstClass::Load: {
            Addr addr = state.readReg(inst.rs1) +
                        static_cast<std::uint64_t>(inst.imm);
            unsigned size = isa::accessSize(inst.op);
            csb_assert(addr % size == 0, "interpreter: misaligned load");
            std::uint64_t bits = 0;
            memory_.read(addr, &bits, size);
            if constexpr (HasTrace)
                recordStep(traceRec_, traceCpu_, instsExecuted_ - 1,
                           state.pid, sim::TraceOp::CachedLoad, addr,
                           size, bits);
            state.writeReg(inst.rd, bits);
            break;
          }
          case InstClass::Store: {
            Addr addr = state.readReg(inst.rs1) +
                        static_cast<std::uint64_t>(inst.imm);
            unsigned size = isa::accessSize(inst.op);
            csb_assert(addr % size == 0, "interpreter: misaligned store");
            std::uint64_t bits = state.readReg(inst.rs2);
            if constexpr (HasTrace)
                recordStep(traceRec_, traceCpu_, instsExecuted_ - 1,
                           state.pid, sim::TraceOp::CachedStore, addr,
                           size, bits);
            memory_.write(addr, &bits, size);
            break;
          }
          case InstClass::Swap: {
            Addr addr = state.readReg(inst.rs1) +
                        static_cast<std::uint64_t>(inst.imm);
            unsigned size = isa::accessSize(inst.op);
            csb_assert(addr % size == 0, "interpreter: misaligned swap");
            std::uint64_t old = 0;
            memory_.read(addr, &old, size);
            std::uint64_t nv = state.readReg(inst.rd);
            if constexpr (HasTrace)
                recordStep(traceRec_, traceCpu_, instsExecuted_ - 1,
                           state.pid, sim::TraceOp::SwapMemWrite, addr,
                           size, nv, sim::TraceFlagSwap);
            memory_.write(addr, &nv, size);
            state.writeReg(inst.rd, old);
            break;
          }
          case InstClass::Membar:
            // Sequential execution is already strongly ordered.
            if constexpr (HasTrace)
                recordStep(traceRec_, traceCpu_, instsExecuted_ - 1,
                           state.pid, sim::TraceOp::Membar, 0, 0, 0);
            break;
          case InstClass::Branch: {
            bool taken = evalBranch(inst.op, state.readReg(inst.rs1),
                                    state.readReg(inst.rs2));
            if (taken)
                next_pc = static_cast<std::uint64_t>(inst.target);
            break;
          }
        }
        state.pc = next_pc;
    }
    return state;
}

} // namespace csb::cpu
