/**
 * @file
 * Preemptive round-robin scheduling of several processes on one core.
 *
 * Models the paper's competing-process scenario (section 3.2): a
 * process can be preempted between its combining stores and its
 * conditional flush; the competitor's first combining store then
 * clears the CSB, and the original process's flush fails and retries.
 */

#ifndef CSB_CPU_CONTEXT_SCHEDULER_HH
#define CSB_CPU_CONTEXT_SCHEDULER_HH

#include <string>
#include <vector>

#include "core.hh"
#include "sim/clocked.hh"
#include "sim/simulator.hh"

namespace csb::cpu {

/** Round-robin scheduler with a fixed time quantum. */
class ContextScheduler : public sim::Clocked, public sim::stats::StatGroup
{
  public:
    ContextScheduler(sim::Simulator &simulator, Core &core, Tick quantum,
                     std::string name = "sched",
                     sim::stats::StatGroup *stat_parent = nullptr);

    /** Register a process.  Call before start(). */
    void addProcess(const isa::Program *program, ProcId pid);

    /** Load the first process onto the core. */
    void start();

    /** @return true when every process has halted. */
    bool allFinished() const;

    /** Number of registered processes. */
    std::size_t numProcesses() const { return processes_.size(); }

    /**
     * Final architectural state of process @p index.  Meaningful once
     * allFinished(); the process still loaded on the core is read
     * from the core's live state.
     */
    const ArchState &finalState(std::size_t index) const;

    void tick() override;

    sim::stats::Scalar preemptions;

  private:
    struct Process
    {
        const isa::Program *program = nullptr;
        ArchState state;
        bool finished = false;
    };

    /** Next runnable process after @p from, or -1. */
    int nextRunnable(int from) const;

    void switchTo(int index);

    sim::Simulator &sim_;
    Core &core_;
    Tick quantum_;
    std::vector<Process> processes_;
    int current_ = -1;
    Tick sliceStart_ = 0;
    bool started_ = false;
};

} // namespace csb::cpu

#endif // CSB_CPU_CONTEXT_SCHEDULER_HH
