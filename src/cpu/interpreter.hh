/**
 * @file
 * Functional reference model of the mini-ISA.
 *
 * Executes a Program strictly sequentially against a PhysicalMemory,
 * with none of the pipeline's reordering.  Used as the oracle for
 * differential testing of the out-of-order core: for programs whose
 * memory accesses stay in cached space, the core must produce exactly
 * the interpreter's architectural state, no matter how aggressively
 * it reorders.
 */

#ifndef CSB_CPU_INTERPRETER_HH
#define CSB_CPU_INTERPRETER_HH

#include <memory>
#include <vector>

#include "arch_state.hh"
#include "isa/program.hh"
#include "mem/physical_memory.hh"
#include "sim/trace_recorder.hh"
#include "translator.hh"

namespace csb::cpu {

/** Sequential reference executor. */
class Interpreter
{
  public:
    Interpreter(const isa::Program &program, mem::PhysicalMemory &memory)
        : program_(program), memory_(memory)
    {
        csb_assert(program.finalized(), "interpreter needs a finalized "
                                        "program");
    }

    /**
     * Run until HALT or @p max_steps instructions.
     * @return final architectural state (halted flag set on HALT)
     */
    ArchState run(std::uint64_t max_steps = 1'000'000);

    /** Mark ids in commit order (timestamps are meaningless here). */
    const std::vector<std::int64_t> &marks() const { return marks_; }

    /** Instructions executed by the last run(). */
    std::uint64_t instsExecuted() const { return instsExecuted_; }

    /**
     * Record every memory reference into @p recorder as core
     * @p cpu_index, flagged TraceFlagInterpreter with the instruction
     * step index as the tick (the interpreter has no clock).  Such
     * traces document the sequential reference stream; they are not
     * replayable cycle-accurately (docs/TRACE_FORMAT.md).
     */
    void
    setTraceRecorder(sim::TraceRecorder *recorder,
                     std::uint8_t cpu_index = 0)
    {
        traceRec_ = recorder;
        traceCpu_ = cpu_index;
    }

    /**
     * Enable/disable the basic-block translated fast path
     * (cpu/translator.hh).  Results -- arch state, marks, trace
     * stream, instsExecuted() -- are bit-identical either way; only
     * dispatch changes.  Memory instructions always take the slow
     * path below, so the trace stream keeps its exact content and
     * step indices.
     */
    void
    setTranslate(bool on)
    {
        if (!on) {
            translator_.reset();
            return;
        }
        translator_ = std::make_unique<Translator>();
        translator_->setProgram(&program_);
    }

  private:
    template <bool HasTrace>
    ArchState runLoop(std::uint64_t max_steps);

    const isa::Program &program_;
    mem::PhysicalMemory &memory_;
    std::vector<std::int64_t> marks_;
    std::uint64_t instsExecuted_ = 0;
    sim::TraceRecorder *traceRec_ = nullptr;
    std::uint8_t traceCpu_ = 0;
    std::unique_ptr<Translator> translator_;
};

} // namespace csb::cpu

#endif // CSB_CPU_INTERPRETER_HH
