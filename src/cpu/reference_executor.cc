#include "reference_executor.hh"

#include <cstring>

#include "sim/logging.hh"
#include "translator.hh"

namespace csb::cpu {

using isa::InstClass;
using mem::PageAttr;

ReferenceExecutor::ReferenceExecutor(RefCsbModel csb) : csbModel_(csb)
{
    csb_assert(csb.lineBytes > 0 && (csb.lineBytes & (csb.lineBytes - 1)) == 0,
               "reference CSB line size must be a power of two");
}

void
ReferenceExecutor::addContext(const isa::Program *program, ProcId pid,
                              unsigned csb_unit)
{
    csb_assert(program && program->finalized(),
               "reference executor needs a finalized program");
    if (csb_unit >= units_.size()) {
        units_.resize(csb_unit + 1);
        for (CsbUnit &unit : units_) {
            if (unit.data.empty()) {
                unit.data.assign(csbModel_.lineBytes, 0);
                unit.valid.assign(csbModel_.lineBytes, false);
            }
        }
    }
    Context ctx;
    ctx.program = program;
    ctx.state.pid = pid;
    ctx.csbUnit = csb_unit;
    contexts_.push_back(std::move(ctx));
}

void
ReferenceExecutor::run(std::uint64_t max_steps_per_context)
{
    for (Context &ctx : contexts_)
        runContext(ctx, max_steps_per_context);
}

std::uint64_t
ReferenceExecutor::csbFlushesSucceeded(unsigned unit) const
{
    return unit < units_.size() ? units_[unit].flushesSucceeded : 0;
}

void
ReferenceExecutor::foldIoWrite(Context &ctx, Addr addr, unsigned size,
                               std::uint64_t bits)
{
    // The device sees only `size` bytes; record the transaction the
    // way the bus carries it so write-stream comparisons line up.
    if (size < 8)
        bits &= (std::uint64_t(1) << (size * 8)) - 1;
    ctx.ioWrites.push_back({addr, size, bits});
    std::uint8_t bytes[8];
    std::memcpy(bytes, &bits, sizeof(bytes));
    for (unsigned i = 0; i < size; ++i)
        ioImage_[addr + i] = bytes[i];
}

void
ReferenceExecutor::csbStore(CsbUnit &unit, ProcId pid, Addr addr,
                            unsigned size, std::uint64_t bits)
{
    Addr line = addr & ~Addr(csbModel_.lineBytes - 1);
    bool match = unit.hitCounter > 0 && unit.pid == pid &&
                 unit.lineAddr == line;
    if (!match) {
        std::fill(unit.data.begin(), unit.data.end(), 0);
        std::fill(unit.valid.begin(), unit.valid.end(), false);
        unit.lineAddr = line;
        unit.pid = pid;
        unit.hitCounter = 0;
    }
    unsigned offset = static_cast<unsigned>(addr - line);
    csb_assert(offset + size <= csbModel_.lineBytes,
               "combining store crosses a line boundary");
    std::memcpy(unit.data.data() + offset, &bits, size);
    for (unsigned i = 0; i < size; ++i)
        unit.valid[offset + i] = true;
    ++unit.hitCounter;
}

bool
ReferenceExecutor::csbFlush(CsbUnit &unit, ProcId pid, Addr addr,
                            std::uint64_t expected)
{
    Addr line = addr & ~Addr(csbModel_.lineBytes - 1);
    bool match = unit.hitCounter != 0 && unit.hitCounter == expected &&
                 unit.pid == pid &&
                 (!csbModel_.checkAddress || unit.lineAddr == line);
    if (match) {
        // Issue the line: all valid bytes, plus (in full-line mode)
        // the zero padding of the invalid ones -- exactly what the
        // cycle model's CSB hands to the bus.
        for (unsigned i = 0; i < csbModel_.lineBytes; ++i) {
            if (unit.valid[i])
                ioImage_[unit.lineAddr + i] = unit.data[i];
            else if (!csbModel_.partialFlush)
                ioImage_[unit.lineAddr + i] = 0;
        }
        ++unit.flushesSucceeded;
    }
    std::fill(unit.data.begin(), unit.data.end(), 0);
    std::fill(unit.valid.begin(), unit.valid.end(), false);
    unit.hitCounter = 0;
    return match;
}

void
ReferenceExecutor::runContext(Context &ctx, std::uint64_t max_steps)
{
    ArchState &state = ctx.state;
    const isa::Program &program = *ctx.program;
    CsbUnit &csb = units_.at(ctx.csbUnit);

    Translator xlat;
    if (translate_)
        xlat.setProgram(ctx.program);

    std::uint64_t steps = 0;
    while (!state.halted) {
        if (translate_) {
            // Translated fast path between memory-system events.  Its
            // budget accounting is exact (it never enters a block that
            // would overshoot max_steps), so the runaway-cap fatal
            // below still fires at the identical instruction count.
            steps += xlat.run(state, max_steps - steps, ctx.marks);
        }
        if (steps++ >= max_steps) {
            csb_fatal("reference executor: context pid=", state.pid,
                      " exceeded ", max_steps,
                      " steps without halting");
        }
        csb_assert(state.pc < program.size(),
                   "reference executor fell off the program");
        const isa::Instruction &inst = program.at(state.pc);
        std::uint64_t next_pc = state.pc + 1;

        switch (inst.instClass()) {
          case InstClass::Nop:
            break;
          case InstClass::Halt:
            state.halted = true;
            break;
          case InstClass::Mark:
            ctx.marks.push_back(inst.imm);
            break;
          case InstClass::IntAlu:
          case InstClass::FpAlu: {
            std::uint64_t a = state.readReg(inst.rs1);
            std::uint64_t b = inst.rs2.valid()
                                  ? state.readReg(inst.rs2)
                                  : static_cast<std::uint64_t>(inst.imm);
            state.writeReg(inst.rd, evalAlu(inst.op, a, b));
            break;
          }
          case InstClass::Load: {
            Addr addr = state.readReg(inst.rs1) +
                        static_cast<std::uint64_t>(inst.imm);
            unsigned size = isa::accessSize(inst.op);
            csb_assert(addr % size == 0, "reference: misaligned load");
            std::uint64_t bits = 0;
            if (pageTable_.attrOf(addr) == PageAttr::Cached)
                memory_.read(addr, &bits, size);
            // Uncached loads are device register reads; with no
            // registers programmed they return zero (writes are
            // logged, never reflected back -- io::BurstDevice).
            state.writeReg(inst.rd, bits);
            break;
          }
          case InstClass::Store: {
            Addr addr = state.readReg(inst.rs1) +
                        static_cast<std::uint64_t>(inst.imm);
            unsigned size = isa::accessSize(inst.op);
            csb_assert(addr % size == 0, "reference: misaligned store");
            std::uint64_t bits = state.readReg(inst.rs2);
            switch (pageTable_.attrOf(addr)) {
              case PageAttr::Cached:
                memory_.write(addr, &bits, size);
                break;
              case PageAttr::UncachedCombining:
                csbStore(csb, state.pid, addr, size, bits);
                break;
              default:
                foldIoWrite(ctx, addr, size, bits);
                break;
            }
            break;
          }
          case InstClass::Swap: {
            Addr addr = state.readReg(inst.rs1) +
                        static_cast<std::uint64_t>(inst.imm);
            unsigned size = isa::accessSize(inst.op);
            csb_assert(addr % size == 0, "reference: misaligned swap");
            std::uint64_t nv = state.readReg(inst.rd);
            std::uint64_t result = 0;
            switch (pageTable_.attrOf(addr)) {
              case PageAttr::Cached:
                memory_.read(addr, &result, size);
                memory_.write(addr, &nv, size);
                break;
              case PageAttr::UncachedCombining:
                // Conditional flush: rd carries the expected hit
                // count in, and reads back unchanged on success,
                // zero on failure (section 3.2).
                result = csbFlush(csb, state.pid, addr, nv) ? nv : 0;
                break;
              default:
                // Plain uncached swap: the old value is a device
                // register read (zero), the new value a logged write.
                foldIoWrite(ctx, addr, size, nv);
                break;
            }
            state.writeReg(inst.rd, result);
            break;
          }
          case InstClass::Membar:
            // Sequential execution is already strongly ordered.
            break;
          case InstClass::Branch: {
            bool taken = evalBranch(inst.op, state.readReg(inst.rs1),
                                    state.readReg(inst.rs2));
            if (taken)
                next_pc = static_cast<std::uint64_t>(inst.target);
            break;
          }
        }
        state.pc = next_pc;
    }
}

} // namespace csb::cpu
