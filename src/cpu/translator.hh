/**
 * @file
 * Basic-block translation cache with predecoded threaded dispatch.
 *
 * The translator lowers a finalized isa::Program into basic blocks of
 * flat micro-ops: every operand is resolved at predecode time to a
 * byte offset into ArchState, every branch target to an instruction
 * index, and every opcode to a per-opcode handler function.  The hot
 * loop is function-pointer threaded -- each handler executes its
 * micro-op and returns the next one (or null at a block terminator) --
 * so there is no per-step opcode switch, no program_.at() bounds
 * check, and no trace-recorder test inside a block.
 *
 * Blocks end at branches (which are translated, with both successor
 * pcs predecoded) and *before* anything the cycle-level machinery must
 * see: loads, stores, SWAP, MEMBAR, Halt and the end of the program.
 * At such a boundary run() returns with state.pc parked on the
 * boundary instruction and the caller's existing path (Interpreter
 * slow step, ReferenceExecutor slow step, or the cycle-level Core
 * pipeline) takes over, so timing, the CSB commit point, fault
 * injection and TraceRecorder semantics are untouched -- the
 * store-buffer reduction theorem (PAPERS.md) is exactly the statement
 * that program-order execution between memory-system events is
 * equivalent to the interleaved cycle-level execution.
 *
 * The block cache is keyed by entry pc (a dense lazy vector -- any pc
 * can start a block, branches into the middle of an existing block
 * simply translate an overlapping one) and invalidated wholesale by
 * setProgram() on every program (re)load.
 *
 * Budget semantics are exact: run(state, max_steps) only *enters* a
 * block whose full architectural length fits in the remaining budget
 * and returns the count executed, so callers that meter instructions
 * (Interpreter::run's max_steps, ReferenceExecutor's runaway cap)
 * observe bit-identical step accounting with translation on or off.
 */

#ifndef CSB_CPU_TRANSLATOR_HH
#define CSB_CPU_TRANSLATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch_state.hh"
#include "isa/program.hh"

namespace csb::cpu {

/** Where the translated fast path is allowed to run. */
enum class TranslateMode : std::uint8_t {
    Off,              ///< every engine keeps its legacy dispatch
    Interpreter,      ///< functional engines only (Interpreter,
                      ///< ReferenceExecutor); cycle model untouched
    CoreFastForward,  ///< cycle-level cores additionally fast-forward
                      ///< through long translated blocks (documented
                      ///< approximate-timing mode, docs/PERF.md)
};

/** @return "off" / "interpreter" / "core-fastforward". */
const char *translateModeName(TranslateMode mode);

/** Parse translateModeName() spellings; FatalError on anything else. */
TranslateMode parseTranslateMode(const std::string &text);

/** Translated-dispatch knobs, embedded as SystemConfig::cpu. */
struct TranslateConfig
{
    TranslateMode translate = TranslateMode::Off;

    /**
     * Core fast-forward: architectural instructions retired per tick
     * while fast-forwarding (the mode's time-compression ratio).  A
     * block longer than this still executes whole -- blocks are never
     * split -- so it is a floor on per-tick progress, not a ceiling.
     */
    unsigned fastForwardInstsPerTick = 256;

    /**
     * Core fast-forward: minimum block length worth draining the
     * pipeline for.  Short blocks between memory events stay on the
     * cycle-level path, where the out-of-order window already
     * overlaps them with the memory traffic.
     */
    unsigned fastForwardMinBlock = 8;

    void validate() const;
};

/** Predecode pass + block cache + threaded dispatch loop. */
class Translator
{
  public:
    /** Mutable execution context a micro-op handler sees. */
    struct Frame
    {
        ArchState &state;
        std::vector<std::int64_t> &marks;
    };

    struct MicroOp;
    /**
     * Handler: execute @p op, return the next micro-op or null.
     * @p regs is the ArchState base address (operand offsets index
     * into it); it rides in its own argument register so the common
     * ALU handlers never touch @p frame at all.
     */
    using OpFn = const MicroOp *(*)(const MicroOp *op, char *regs,
                                    Frame &frame);

    /** One predecoded micro-op (flat, branch-resolved). */
    struct MicroOp
    {
        OpFn fn = nullptr;
        /** Byte offsets of dst/src registers inside ArchState. */
        std::uint16_t dst = 0;
        std::uint16_t srcA = 0;
        std::uint16_t srcB = 0;
        std::int64_t imm = 0;
        /** Branch: taken-successor pc. */
        std::uint64_t targetPc = 0;
        /** Branch / block end: not-taken / boundary pc. */
        std::uint64_t fallthroughPc = 0;
    };

    /**
     * (Re)attach a program: drops every cached block.  @p program may
     * be null to detach.  Must be finalized otherwise.
     */
    void setProgram(const isa::Program *program);

    /**
     * Execute translated blocks starting at state.pc, chaining across
     * branches, until the next block would not fit in @p max_steps,
     * would cross a memory event / Halt / program end, or the state
     * halts.  Mark ids are appended to @p marks in program order.
     *
     * @return architectural instructions executed (possibly 0: the
     *         caller must then make progress on its own slow path).
     */
    std::uint64_t run(ArchState &state, std::uint64_t max_steps,
                      std::vector<std::int64_t> &marks);

    /**
     * Architectural length of the block entered at @p pc; 0 when @p pc
     * holds a boundary instruction (or lies outside the program).
     * Translates (and caches) the block on first use.
     */
    std::uint64_t blockLen(std::uint64_t pc);

  private:
    struct Block
    {
        std::vector<MicroOp> ops;
        /** Architectural instructions the block covers (incl. the
         *  terminating branch and any elided Nops). */
        std::uint64_t len = 0;
        bool translated = false;
    };

    Block &blockAt(std::uint64_t pc);
    void translate(Block &block, std::uint64_t entry_pc) const;

    const isa::Program *program_ = nullptr;
    std::vector<Block> blocks_;
};

} // namespace csb::cpu

#endif // CSB_CPU_TRANSLATOR_HH
