#include "core.hh"

#include <algorithm>
#include <cstring>

#include "sim/checkpoint.hh"
#include "sim/trace.hh"

namespace csb::cpu {

using isa::InstClass;
using isa::Opcode;
using isa::RegId;

void
CoreParams::validate() const
{
    if (fetchWidth == 0 || retireWidth == 0 || windowSize == 0)
        csb_fatal("core widths must be non-zero");
    if (intUnits == 0)
        csb_fatal("core needs at least one integer unit");
    if (maxUncachedRetirePerCycle == 0)
        csb_fatal("core must retire at least one uncached op per cycle");
}

Core::Core(sim::Simulator &simulator, const CoreParams &params,
           const CoreMemPorts &ports, std::string name,
           sim::stats::StatGroup *stat_parent)
    : sim::Clocked(name, sim::ClockDomain(1), /*eval_order=*/0),
      sim::stats::StatGroup(name, stat_parent),
      numCycles(this, "numCycles", "cycles simulated"),
      instsRetired(this, "instsRetired", "instructions committed"),
      instsDispatched(this, "instsDispatched", "instructions dispatched"),
      branchFetchStallCycles(this, "branchFetchStallCycles",
                             "cycles fetch waited on a branch"),
      windowFullStallCycles(this, "windowFullStallCycles",
                            "cycles dispatch stalled on a full window"),
      uncachedRetireStallCycles(this, "uncachedRetireStallCycles",
                                "cycles retire stalled on uncached ops"),
      membarStallCycles(this, "membarStallCycles",
                        "cycles a MEMBAR waited for the uncached buffer"),
      csbStoreStallCycles(this, "csbStoreStallCycles",
                          "cycles retire stalled on a busy CSB"),
      contextSwitches(this, "contextSwitches", "pipeline squashes"),
      instsFastForwarded(this, "instsFastForwarded",
                         "instructions retired via the translated "
                         "fast-forward path"),
      uncachedStallRuns(this, "uncachedStallRuns",
                        "consecutive cycles an uncached store waited "
                        "before retiring",
                        0, 64, 1),
      ipc(this, "ipc", "retired instructions per cycle",
          [this] {
              double cycles = numCycles.value();
              return cycles > 0 ? instsRetired.value() / cycles : 0.0;
          }),
      sim_(simulator), params_(params), ports_(ports)
{
    params_.validate();
    csb_assert(ports_.tlb && ports_.caches && ports_.ubuf && ports_.memory,
               "core is missing a memory port");
    simulator.registerClocked(this);
}

std::uint32_t
Core::regKey(const RegId &reg)
{
    return (static_cast<std::uint32_t>(reg.cls) << 8) | reg.idx;
}

void
Core::loadProgram(const isa::Program *program, ProcId pid)
{
    csb_assert(program != nullptr && program->finalized(),
               "loadProgram needs a finalized program");
    program_ = program;
    if (ffTranslator_)
        ffTranslator_->setProgram(program_);
    arch_ = ArchState{};
    arch_.pid = pid;
    spec_ = arch_;
    window_.clear();
    lastWriter_.clear();
    fetchPc_ = 0;
    fetchHalted_ = false;
    fetchStallSeq_ = 0;
    switchPending_ = false;
    ++epoch_;
}

void
Core::enableFastForward(const TranslateConfig &config)
{
    config.validate();
    ffTranslator_ = std::make_unique<Translator>();
    ffInstsPerTick_ = config.fastForwardInstsPerTick;
    ffMinBlock_ = config.fastForwardMinBlock;
    if (program_)
        ffTranslator_->setProgram(program_);
}

void
Core::recordRef(sim::TraceOp op, Addr addr, unsigned size,
                std::uint64_t value, mem::PageAttr attr,
                std::uint8_t flags)
{
    if (!traceRec_)
        return;
    sim::TraceRecord rec;
    rec.tick = sim_.curTick();
    rec.addr = addr;
    rec.value = value;
    rec.pid = arch_.pid;
    rec.op = op;
    rec.cpu = traceCpu_;
    rec.size = std::uint8_t(size);
    rec.flags = std::uint8_t(
        flags | (std::uint8_t(attr) << sim::TraceFlagAttrShift));
    traceRec_->append(rec);
}

void
Core::checkpointSave(sim::CheckpointWriter &cw) const
{
    csb_assert(window_.empty(),
               "core checkpoint requires a drained pipeline");
    for (std::uint64_t reg : arch_.intRegs)
        cw.putU64(reg);
    for (std::uint64_t reg : arch_.fpRegs)
        cw.putU64(reg);
    cw.putU64(arch_.pc);
    cw.putU32(arch_.pid);
    cw.putU8(arch_.halted ? 1 : 0);
    cw.putU64(marks_.size());
    for (const MarkRecord &mark : marks_) {
        cw.putU64(std::uint64_t(mark.first));
        cw.putU64(mark.second);
    }
    cw.putU64(nextSeq_);
    cw.putU64(epoch_);
}

void
Core::checkpointRestore(sim::CheckpointReader &cr)
{
    csb_assert(window_.empty() && program_ == nullptr,
               "core checkpoint restore requires a fresh core");
    for (std::uint64_t &reg : arch_.intRegs)
        reg = cr.getU64();
    for (std::uint64_t &reg : arch_.fpRegs)
        reg = cr.getU64();
    arch_.pc = cr.getU64();
    arch_.pid = ProcId(cr.getU32());
    arch_.halted = cr.getU8() != 0;
    spec_ = arch_;
    marks_.clear();
    const std::uint64_t num_marks = cr.getU64();
    for (std::uint64_t i = 0; i < num_marks; ++i) {
        auto id = std::int64_t(cr.getU64());
        Tick when = cr.getU64();
        marks_.emplace_back(id, when);
    }
    nextSeq_ = cr.getU64();
    epoch_ = cr.getU64();
}

Tick
Core::markTime(std::int64_t id) const
{
    for (const MarkRecord &mark : marks_) {
        if (mark.first == id)
            return mark.second;
    }
    return maxTick;
}

void
Core::requestContextSwitch(
    const isa::Program *next_program, const ArchState &next_state,
    std::function<void(const ArchState &)> on_switched)
{
    csb_assert(!switchPending_, "context switch already pending");
    csb_assert(next_program && next_program->finalized(),
               "switch target program not finalized");
    switchPending_ = true;
    nextProgram_ = next_program;
    nextState_ = next_state;
    onSwitched_ = std::move(on_switched);
}

void
Core::doSquashAndSwitch()
{
    ArchState saved = arch_;
    ++epoch_;
    window_.clear();
    lastWriter_.clear();
    arch_ = nextState_;
    spec_ = arch_;
    program_ = nextProgram_;
    if (ffTranslator_)
        ffTranslator_->setProgram(program_);
    fetchPc_ = arch_.pc;
    fetchHalted_ = arch_.halted;
    fetchStallSeq_ = 0;
    switchPending_ = false;
    contextSwitches += 1;
    sim::trace::log("cpu", "context switch to pid=", arch_.pid,
                    " pc=", arch_.pc);
    if (onSwitched_) {
        auto cb = std::move(onSwitched_);
        onSwitched_ = nullptr;
        cb(saved);
    }
}

void
Core::tick()
{
    numCycles += 1;
    if (switchPending_) {
        // Squash only when no non-speculative head operation is in
        // flight, preserving exactly-once semantics for I/O.
        if (window_.empty() || !window_.front().headOpStarted)
            doSquashAndSwitch();
    }
    if (program_ == nullptr)
        return;
    retireStage();
    issueStage();
    fetchStage();
}

// ---------------------------------------------------------------------
// Dispatch helpers

std::pair<RegId, RegId>
Core::sourcesOf(const isa::Instruction &inst)
{
    switch (inst.instClass()) {
      case InstClass::IntAlu:
      case InstClass::FpAlu:
        return {inst.rs1, inst.rs2};
      case InstClass::Load:
        return {inst.rs1, isa::noReg};
      case InstClass::Store:
        return {inst.rs1, inst.rs2};
      case InstClass::Swap:
        // rd supplies the value written to memory (and, for the
        // conditional flush, the expected hit count).
        return {inst.rs1, inst.rd};
      case InstClass::Branch:
        return {inst.rs1, inst.rs2};
      default:
        return {isa::noReg, isa::noReg};
    }
}

RegId
Core::destOf(const isa::Instruction &inst)
{
    switch (inst.instClass()) {
      case InstClass::IntAlu:
      case InstClass::FpAlu:
      case InstClass::Load:
      case InstClass::Swap:
        return inst.rd;
      default:
        return isa::noReg;
    }
}

Core::DynInst *
Core::findBySeq(std::uint64_t seq)
{
    for (DynInst &di : window_) {
        if (di.seq == seq)
            return &di;
    }
    return nullptr;
}

void
Core::captureOperand(const RegId &reg, std::uint64_t &producer,
                     std::uint64_t &value)
{
    producer = 0;
    if (!reg.valid() || reg.isZero()) {
        value = 0;
        return;
    }
    auto it = lastWriter_.find(regKey(reg));
    if (it != lastWriter_.end()) {
        if (DynInst *writer = findBySeq(it->second)) {
            if (writer->state == State::Done) {
                value = writer->result;
            } else {
                producer = writer->seq;
                value = 0;
            }
            return;
        }
    }
    value = spec_.readReg(reg);
}

bool
Core::operandsReady(const DynInst &inst) const
{
    return inst.src1Producer == 0 && inst.src2Producer == 0;
}

void
Core::fetchStage()
{
    if (fetchHalted_ || program_ == nullptr)
        return;
    if (fetchStallSeq_ != 0) {
        branchFetchStallCycles += 1;
        return;
    }

    // Translated fast-forward: with the pipeline drained, burn
    // through long pure-compute block chains architecturally instead
    // of re-fetching them one pipeline slot at a time.
    if (ffTranslator_ && window_.empty() && !switchPending_)
        fastForward();

    Tick now = sim_.curTick();
    unsigned fetched = 0;
    while (fetched < params_.fetchWidth) {
        if (window_.size() >= params_.windowSize) {
            windowFullStallCycles += 1;
            break;
        }
        // Leave a long block to the fast-forward path: stop fetching
        // so the window drains and fastForward() picks it up.  Short
        // blocks stay on the pipeline, where the out-of-order window
        // overlaps them with the surrounding memory traffic.
        if (ffTranslator_ &&
            ffTranslator_->blockLen(fetchPc_) >= ffMinBlock_) {
            break;
        }
        csb_assert(fetchPc_ < program_->size(),
                   "fetch fell off the end of the program");
        const isa::Instruction &inst = program_->at(fetchPc_);

        DynInst di;
        di.seq = nextSeq_++;
        di.pc = fetchPc_;
        di.inst = inst;
        di.dispatchTick = now;

        auto [s1, s2] = sourcesOf(inst);
        captureOperand(s1, di.src1Producer, di.src1Val);
        captureOperand(s2, di.src2Producer, di.src2Val);

        InstClass cls = inst.instClass();
        if (cls == InstClass::Nop || cls == InstClass::Mark ||
            cls == InstClass::Halt || cls == InstClass::Membar) {
            di.state = State::Done;
        }

        bool branch_resolved_taken = false;
        bool branch_stalls = false;
        if (cls == InstClass::Branch) {
            if (operandsReady(di)) {
                di.resolved = true;
                di.taken = evalBranch(inst.op, di.src1Val, di.src2Val);
                branch_resolved_taken = di.taken;
            } else {
                branch_stalls = true;
            }
        }

        RegId rd = destOf(inst);
        std::uint64_t seq = di.seq;
        window_.push_back(std::move(di));
        instsDispatched += 1;
        ++fetched;
        if (rd.valid() && !rd.isZero())
            lastWriter_[regKey(rd)] = seq;

        if (cls == InstClass::Branch) {
            if (branch_stalls) {
                fetchStallSeq_ = seq;
                break;
            }
            if (branch_resolved_taken) {
                fetchPc_ = static_cast<std::uint64_t>(inst.target);
                break; // one fetch redirect per cycle
            }
            ++fetchPc_;
        } else if (cls == InstClass::Halt) {
            fetchHalted_ = true;
            break;
        } else {
            ++fetchPc_;
        }
    }
}

void
Core::fastForward()
{
    // The window is drained, so everything fetched has retired and
    // the committed pc is exactly where fetch stands.
    csb_assert(arch_.pc == fetchPc_,
               "fast-forward with fetch ahead of commit");
    std::uint64_t blen = ffTranslator_->blockLen(arch_.pc);
    if (blen < ffMinBlock_)
        return;
    // A block is never split, so the budget is a floor, not a cap:
    // an oversized block still executes whole this tick.
    std::uint64_t budget = std::max<std::uint64_t>(ffInstsPerTick_, blen);
    std::vector<std::int64_t> mark_ids;
    std::uint64_t steps = ffTranslator_->run(arch_, budget, mark_ids);
    csb_assert(steps > 0, "fast-forward made no progress");
    Tick now = sim_.curTick();
    for (std::int64_t id : mark_ids)
        marks_.emplace_back(id, now);
    spec_ = arch_;
    fetchPc_ = arch_.pc;
    instsRetired += steps;
    instsDispatched += steps;
    instsFastForwarded += steps;
    sim_.noteProgress();
}

// ---------------------------------------------------------------------
// Issue / execute

void
Core::finishInst(DynInst &inst, std::uint64_t result)
{
    csb_assert(inst.state != State::Done, "double writeback of seq ",
               inst.seq);
    inst.result = result;
    inst.state = State::Done;

    RegId rd = destOf(inst.inst);
    if (rd.valid() && !rd.isZero()) {
        auto it = lastWriter_.find(regKey(rd));
        if (it != lastWriter_.end() && it->second == inst.seq)
            spec_.writeReg(rd, result);
    }

    for (DynInst &di : window_) {
        if (di.src1Producer == inst.seq) {
            di.src1Producer = 0;
            di.src1Val = result;
        }
        if (di.src2Producer == inst.seq) {
            di.src2Producer = 0;
            di.src2Val = result;
        }
    }

    if (inst.inst.instClass() == InstClass::Branch) {
        if (!inst.resolved) {
            inst.resolved = true;
            inst.taken =
                evalBranch(inst.inst.op, inst.src1Val, inst.src2Val);
        }
        if (fetchStallSeq_ == inst.seq) {
            fetchStallSeq_ = 0;
            fetchPc_ = inst.taken
                           ? static_cast<std::uint64_t>(inst.inst.target)
                           : inst.pc + 1;
        }
    }
}

bool
Core::loadBlockedByStore(const DynInst &load, std::uint64_t &fwd_val,
                         bool &can_forward) const
{
    can_forward = false;
    // Scan older stores youngest-first: the nearest older store in
    // program order owns the bytes the load reads, so it alone decides
    // between forwarding and waiting.  (An oldest-first scan acted on
    // the first match instead and forwarded one-generation-stale data
    // whenever two same-address stores were in flight, as in a tight
    // read-modify-write loop.)  Anything older than the deciding store
    // is irrelevant: the younger store supersedes its bytes.
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        const DynInst &di = *it;
        if (di.seq >= load.seq)
            continue;
        if (!isStore(di.inst.op))
            continue;
        if (!di.addrKnown)
            return true; // conservative: unknown older store address
        Addr lo = di.effAddr;
        Addr hi = di.effAddr + di.size;
        bool overlap = load.effAddr < hi && lo < load.effAddr + load.size;
        if (!overlap)
            continue;
        // Exact match against a plain cached store with its data
        // ready forwards; everything else waits for the store to
        // retire.  Uncached data is never forwarded (section 4.1).
        if (di.inst.instClass() == InstClass::Store &&
            di.attr == mem::PageAttr::Cached &&
            di.effAddr == load.effAddr && di.size == load.size &&
            di.src2Producer == 0) {
            // Forward only the bytes the store actually writes: a
            // narrow store truncates its register at memory, so the
            // forwarded value must be truncated the same way (found by
            // the litmus harness, tests/litmus/corpus/fwd_mask).
            fwd_val = di.size >= 8
                          ? di.src2Val
                          : di.src2Val &
                                ((std::uint64_t(1) << (di.size * 8)) - 1);
            can_forward = true;
        }
        return true;
    }
    return false;
}

void
Core::issueStage()
{
    unsigned int_free = params_.intUnits;
    unsigned fp_free = params_.fpUnits;
    unsigned mem_free = params_.memPorts;
    Tick now = sim_.curTick();

    for (DynInst &di : window_) {
        if (di.state != State::Dispatched || di.dispatchTick == now)
            continue;
        if (!operandsReady(di))
            continue;

        InstClass cls = di.inst.instClass();
        std::uint64_t seq = di.seq;
        std::uint64_t epoch = epoch_;
        auto finish_later = [this, seq, epoch](Tick when,
                                               std::uint64_t result) {
            sim_.eventQueue().scheduleFunc(when,
                [this, seq, epoch, result] {
                    if (epoch != epoch_)
                        return;
                    if (DynInst *p = findBySeq(seq))
                        finishInst(*p, result);
                });
        };

        if (cls == InstClass::IntAlu || cls == InstClass::FpAlu) {
            unsigned &pool = cls == InstClass::IntAlu ? int_free : fp_free;
            if (pool == 0)
                continue;
            --pool;
            std::uint64_t a = di.src1Val;
            std::uint64_t b = di.inst.rs2.valid()
                                  ? di.src2Val
                                  : static_cast<std::uint64_t>(di.inst.imm);
            std::uint64_t result = evalAlu(di.inst.op, a, b);
            Tick lat = params_.intLatency;
            if (di.inst.op == Opcode::Mul)
                lat = params_.mulLatency;
            else if (cls == InstClass::FpAlu)
                lat = params_.fpLatency;
            di.state = State::Issued;
            finish_later(now + lat, result);
        } else if (cls == InstClass::Branch) {
            if (int_free == 0)
                continue;
            --int_free;
            di.state = State::Issued;
            finish_later(now + params_.intLatency, 0);
        } else if (cls == InstClass::Load || cls == InstClass::Store ||
                   cls == InstClass::Swap) {
            if (mem_free == 0)
                continue;

            // Address generation + translation.
            Addr addr = di.src1Val + static_cast<std::uint64_t>(di.inst.imm);
            unsigned size = isa::accessSize(di.inst.op);
            if (addr % size != 0) {
                csb_fatal("misaligned ", isa::mnemonic(di.inst.op),
                          " to 0x", std::hex, addr, std::dec, " at pc ",
                          di.pc);
            }
            Tick tlb_penalty = 0;
            mem::PageAttr attr =
                ports_.tlb->translate(addr, arch_.pid, tlb_penalty);
            di.effAddr = addr;
            di.size = size;
            di.attr = attr;
            di.addrKnown = true;

            if (cls == InstClass::Store) {
                --mem_free;
                di.state = State::Issued;
                // Address and data are staged; the store takes effect
                // at commit.
                finish_later(now + params_.intLatency + tlb_penalty, 0);
            } else if (cls == InstClass::Swap) {
                --mem_free;
                // Executes non-speculatively at the window head.
                di.state = State::Issued;
            } else if (attr == mem::PageAttr::Cached) {
                std::uint64_t fwd = 0;
                bool can_forward = false;
                if (loadBlockedByStore(di, fwd, can_forward)) {
                    if (!can_forward)
                        continue; // retry next cycle
                    --mem_free;
                    di.state = State::Issued;
                    finish_later(now + params_.intLatency + tlb_penalty,
                                 fwd);
                } else {
                    --mem_free;
                    di.state = State::Issued;
                    recordRef(sim::TraceOp::CachedLoad, addr, size,
                              tlb_penalty, attr);
                    ports_.caches->access(
                        addr, /*is_write=*/false, now + tlb_penalty,
                        [this, seq, epoch](Tick) {
                            if (epoch != epoch_)
                                return;
                            DynInst *p = findBySeq(seq);
                            if (!p)
                                return;
                            std::uint64_t bits = 0;
                            ports_.memory->read(p->effAddr, &bits,
                                                p->size);
                            finishInst(*p, bits);
                        });
                }
            } else {
                --mem_free;
                // Uncached load: executes at the window head.
                di.state = State::Issued;
            }
        }
        // Nop/Mark/Halt/Membar are Done at dispatch.
    }
}

// ---------------------------------------------------------------------
// Retire

void
Core::retireStage()
{
    unsigned retired = 0;
    unsigned uncached_retired = 0;
    while (retired < params_.retireWidth && !window_.empty()) {
        if (!commitHead(uncached_retired))
            break;
        ++retired;
    }
    if (retired > 0)
        sim_.noteProgress();
}

void
Core::startHeadSwap(DynInst &head)
{
    Tick now = sim_.curTick();
    std::uint64_t seq = head.seq;
    std::uint64_t epoch = epoch_;

    if (head.attr == mem::PageAttr::Cached) {
        head.headOpStarted = true;
        recordRef(sim::TraceOp::CachedSwapStart, head.effAddr,
                  head.size, head.src2Val, head.attr,
                  sim::TraceFlagSwap);
        ports_.caches->access(
            head.effAddr, /*is_write=*/true, now,
            [this, seq, epoch](Tick) {
                if (epoch != epoch_)
                    return;
                DynInst *p = findBySeq(seq);
                if (!p)
                    return;
                // Atomic read-modify-write.
                std::uint64_t old = 0;
                ports_.memory->read(p->effAddr, &old, p->size);
                recordRef(sim::TraceOp::SwapMemWrite, p->effAddr,
                          p->size, p->src2Val, p->attr,
                          sim::TraceFlagSwap | sim::TraceFlagEventPhase);
                ports_.memory->write(p->effAddr, &p->src2Val, p->size);
                finishInst(*p, old);
            });
        return;
    }

    if (head.attr == mem::PageAttr::UncachedCombining && ports_.csb) {
        // The conditional flush (section 3.2): the swap value is the
        // expected hit count; success leaves it unchanged, failure
        // returns zero.
        head.headOpStarted = true;
        recordRef(sim::TraceOp::CsbFlush, head.effAddr, head.size,
                  head.src2Val, head.attr, sim::TraceFlagSwap);
        bool ok = ports_.csb->conditionalFlush(arch_.pid, head.effAddr,
                                               head.src2Val);
        std::uint64_t result = ok ? head.src2Val : 0;
        sim_.eventQueue().scheduleFunc(
            now + params_.csbFlushLatency,
            [this, seq, epoch, result] {
                if (epoch != epoch_)
                    return;
                if (DynInst *p = findBySeq(seq))
                    finishInst(*p, result);
            });
        return;
    }

    // Plain uncached swap: an atomic bus read-modify-write through the
    // uncached buffer, blocking retire until complete.
    if (!ports_.ubuf->canAcceptLoad())
        return; // retry next cycle
    head.headOpStarted = true;
    recordRef(sim::TraceOp::UncachedLoad, head.effAddr, head.size, 0,
              head.attr, sim::TraceFlagSwap);
    ports_.ubuf->pushLoad(
        head.effAddr, head.size,
        [this, seq, epoch](Tick, const std::vector<std::uint8_t> &data) {
            if (epoch != epoch_)
                return;
            DynInst *p = findBySeq(seq);
            if (!p)
                return;
            std::uint64_t old = 0;
            std::memcpy(&old, data.data(),
                        std::min<std::size_t>(data.size(), 8));
            csb_assert(ports_.ubuf->canAcceptStore(p->effAddr, p->size),
                       "uncached buffer full during atomic swap");
            recordRef(sim::TraceOp::UncachedStore, p->effAddr, p->size,
                      p->src2Val, p->attr,
                      sim::TraceFlagSwap | sim::TraceFlagEventPhase);
            ports_.ubuf->pushStore(p->effAddr, p->size, &p->src2Val);
            finishInst(*p, old);
        });
}

void
Core::startHeadUncachedLoad(DynInst &head)
{
    if (!ports_.ubuf->canAcceptLoad())
        return; // retry next cycle
    std::uint64_t seq = head.seq;
    std::uint64_t epoch = epoch_;
    head.headOpStarted = true;
    recordRef(sim::TraceOp::UncachedLoad, head.effAddr, head.size, 0,
              head.attr);
    ports_.ubuf->pushLoad(
        head.effAddr, head.size,
        [this, seq, epoch](Tick, const std::vector<std::uint8_t> &data) {
            if (epoch != epoch_)
                return;
            DynInst *p = findBySeq(seq);
            if (!p)
                return;
            std::uint64_t bits = 0;
            std::memcpy(&bits, data.data(),
                        std::min<std::size_t>(data.size(), 8));
            finishInst(*p, bits);
        });
}

bool
Core::commitStore(DynInst &head, unsigned &uncached_retired)
{
    if (head.attr == mem::PageAttr::Cached) {
        recordRef(sim::TraceOp::CachedStore, head.effAddr, head.size,
                  head.src2Val, head.attr);
        ports_.memory->write(head.effAddr, &head.src2Val, head.size);
        // Tag update only; store latency is absorbed by write buffers.
        ports_.caches->accessLatency(head.effAddr, /*is_write=*/true);
        return true;
    }

    // All flavours of uncached stores obey the per-cycle retire limit.
    if (uncached_retired >= params_.maxUncachedRetirePerCycle) {
        uncachedRetireStallCycles += 1;
        ++uncachedStallRun_;
        return false;
    }

    if (head.attr == mem::PageAttr::UncachedCombining && ports_.csb) {
        if (!ports_.csb->canAcceptStore()) {
            csbStoreStallCycles += 1;
            ++uncachedStallRun_;
            return false;
        }
        recordRef(sim::TraceOp::CsbStore, head.effAddr, head.size,
                  head.src2Val, head.attr);
        ports_.csb->store(arch_.pid, head.effAddr, head.size,
                          &head.src2Val);
        ++uncached_retired;
        uncachedStallRuns.sample(uncachedStallRun_);
        uncachedStallRun_ = 0;
        return true;
    }

    if (!ports_.ubuf->canAcceptStore(head.effAddr, head.size)) {
        uncachedRetireStallCycles += 1;
        ++uncachedStallRun_;
        return false;
    }
    recordRef(sim::TraceOp::UncachedStore, head.effAddr, head.size,
              head.src2Val, head.attr);
    ports_.ubuf->pushStore(head.effAddr, head.size, &head.src2Val);
    ++uncached_retired;
    uncachedStallRuns.sample(uncachedStallRun_);
    uncachedStallRun_ = 0;
    return true;
}

bool
Core::commitHead(unsigned &uncached_retired)
{
    DynInst &head = window_.front();
    InstClass cls = head.inst.instClass();
    Tick now = sim_.curTick();

    switch (cls) {
      case InstClass::Membar:
        // Drain the uncached buffer (paper section 4.1) and any
        // flushed-but-unsent CSB lines, so that device writes issued
        // after the barrier cannot pass earlier I/O traffic.
        if (!ports_.ubuf->empty() ||
            (ports_.csb && !ports_.csb->drained())) {
            membarStallCycles += 1;
            return false;
        }
        recordRef(sim::TraceOp::Membar, 0, 0, 0, mem::PageAttr::Cached);
        break;

      case InstClass::Store:
        if (head.state != State::Done)
            return false;
        if (!commitStore(head, uncached_retired))
            return false;
        break;

      case InstClass::Swap:
        if (head.state != State::Done) {
            if (!head.headOpStarted && head.addrKnown)
                startHeadSwap(head);
            return false;
        }
        break;

      case InstClass::Load:
        if (head.state != State::Done) {
            if (head.addrKnown && head.attr != mem::PageAttr::Cached &&
                !head.headOpStarted) {
                startHeadUncachedLoad(head);
            }
            return false;
        }
        break;

      case InstClass::Mark:
        marks_.emplace_back(head.inst.imm, now);
        break;

      case InstClass::Halt:
        arch_.halted = true;
        fetchHalted_ = true;
        break;

      default:
        if (head.state != State::Done)
            return false;
        break;
    }

    // Commit.
    RegId rd = destOf(head.inst);
    if (rd.valid() && !rd.isZero())
        arch_.writeReg(rd, head.result);

    if (cls == InstClass::Branch) {
        csb_assert(head.resolved, "retiring an unresolved branch");
        arch_.pc = head.taken
                       ? static_cast<std::uint64_t>(head.inst.target)
                       : head.pc + 1;
    } else {
        arch_.pc = head.pc + 1;
    }

    instsRetired += 1;
    window_.pop_front();
    return true;
}

} // namespace csb::cpu
