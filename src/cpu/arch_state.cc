#include "arch_state.hh"

#include <bit>

namespace csb::cpu {

namespace {

double
asDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

std::uint64_t
asBits(double value)
{
    return std::bit_cast<std::uint64_t>(value);
}

} // namespace

std::uint64_t
evalAlu(isa::Opcode op, std::uint64_t a, std::uint64_t b)
{
    using isa::Opcode;
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    switch (op) {
      case Opcode::Add:
      case Opcode::Addi:
        return a + b;
      case Opcode::Sub:
        return a - b;
      case Opcode::And:
      case Opcode::Andi:
        return a & b;
      case Opcode::Or:
      case Opcode::Ori:
        return a | b;
      case Opcode::Xor:
      case Opcode::Xori:
        return a ^ b;
      case Opcode::Sll:
      case Opcode::Slli:
        return a << (b & 63);
      case Opcode::Srl:
      case Opcode::Srli:
        return a >> (b & 63);
      case Opcode::Sra:
        return static_cast<std::uint64_t>(sa >> (b & 63));
      case Opcode::Mul:
        return a * b;
      case Opcode::Slt:
      case Opcode::Slti:
        return sa < sb ? 1 : 0;
      case Opcode::Sltu:
        return a < b ? 1 : 0;
      case Opcode::Li:
        return b;
      case Opcode::Fadd:
        return asBits(asDouble(a) + asDouble(b));
      case Opcode::Fsub:
        return asBits(asDouble(a) - asDouble(b));
      case Opcode::Fmul:
        return asBits(asDouble(a) * asDouble(b));
      case Opcode::Fmov:
      case Opcode::Mvi2f:
      case Opcode::Mvf2i:
        return a;
      case Opcode::Fitod:
        return asBits(static_cast<double>(sa));
      default:
        csb_panic("evalAlu: non-ALU opcode ", isa::mnemonic(op));
    }
}

bool
evalBranch(isa::Opcode op, std::uint64_t a, std::uint64_t b)
{
    using isa::Opcode;
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    switch (op) {
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Ble: return sa <= sb;
      case Opcode::Bgt: return sa > sb;
      case Opcode::Blt: return sa < sb;
      case Opcode::Bge: return sa >= sb;
      case Opcode::Jmp: return true;
      default:
        csb_panic("evalBranch: non-branch opcode ", isa::mnemonic(op));
    }
}

} // namespace csb::cpu
